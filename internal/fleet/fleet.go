// Package fleet sweeps whole populations of generated WirelessHART
// networks through the evaluation engine and aggregates
// distribution-level results: where one engine solve answers "how does
// this network perform?", a fleet run answers the population-level
// question — what fraction of deployments meet a delay or utilization
// target, and where do the p10/p50/p90 bands lie across the design
// space.
//
// Each network of a population is generated from (seed, index) by
// internal/gen, evaluated independently under a worker pool (the
// engine's two-tier structure/kernel caches do the heavy lifting across
// similar geometries), and reduced to scalar measures; per-network
// failures are isolated into the report rather than aborting the sweep.
// A fixed seed yields a byte-identical report, which the fleet CLI
// echoes for reproducibility.
package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"wirelesshart/internal/engine"
	"wirelesshart/internal/gen"
	"wirelesshart/internal/stats"
)

// Config sizes a fleet run.
type Config struct {
	// Seed is the single fleet seed every network derives from.
	Seed uint64
	// Population is the number of networks to generate and evaluate.
	Population int
	// Params parameterizes the generator.
	Params gen.Params
	// Workers bounds concurrent network evaluations. Default GOMAXPROCS.
	Workers int
	// Engine optionally supplies a shared evaluation engine; by default
	// the runner creates one sized to the population so every scenario
	// stays cacheable within the sweep.
	Engine *engine.Engine
	// FailureSweep optionally adds a per-network robustness sweep: each
	// link is failed in turn with this window and all single-link
	// scenarios are solved as one engine batch.
	FailureSweep *FailureSweep
}

// Runner evaluates fleets. Create one with New; it is safe for repeated
// and concurrent Run calls.
type Runner struct {
	cfg     Config
	eng     *engine.Engine
	metrics *metrics
}

// New validates the configuration and returns a runner. Fleet metrics
// are registered on the engine's obs registry, so one Prometheus
// exposition covers both the sweep and the solves it triggers.
func New(cfg Config) (*Runner, error) {
	if cfg.Population < 1 {
		return nil, fmt.Errorf("fleet: population %d must be positive", cfg.Population)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.FailureSweep != nil {
		if err := cfg.FailureSweep.validate(); err != nil {
			return nil, err
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	eng := cfg.Engine
	if eng == nil {
		eng = engine.New(engine.Config{CacheSize: 2 * cfg.Population})
	}
	return &Runner{cfg: cfg, eng: eng, metrics: newMetrics(eng.Registry())}, nil
}

// Engine returns the evaluation engine backing the runner.
func (r *Runner) Engine() *engine.Engine { return r.eng }

// Run generates and evaluates the whole population and returns the
// aggregated report. Per-network generation or evaluation errors are
// recorded in the report and excluded from the aggregate; Run itself only
// fails on cancellation.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	r.metrics.sweeps.Inc()
	nets := make([]NetworkResult, r.cfg.Population)
	paths := make([][]float64, r.cfg.Population)
	reaches := make([][]float64, r.cfg.Population)

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				nets[i], paths[i], reaches[i] = r.evalOne(ctx, i)
			}
		}()
	}
	for i := 0; i < r.cfg.Population; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{
		Seed:       r.cfg.Seed,
		Population: r.cfg.Population,
		Params:     r.cfg.Params,
		Networks:   nets,
	}
	rep.Aggregate = aggregate(nets, paths, reaches)
	return rep, nil
}

// evalOne generates and evaluates network i, returning its scalar
// measures plus the pooled per-path samples (E[tau] and reachability)
// the fleet-wide bands are computed from.
func (r *Runner) evalOne(ctx context.Context, i int) (NetworkResult, []float64, []float64) {
	r.metrics.networks.Inc()
	out := NetworkResult{Index: i}
	g, err := gen.Generate(r.cfg.Seed, i, r.cfg.Params)
	if err != nil {
		r.metrics.failures.Inc()
		out.Error = "generate: " + err.Error()
		return out, nil, nil
	}
	out.Nodes = g.Net.NumNodes()
	out.Links = g.Net.NumLinks()
	out.Fup = g.Plan.Fup()
	res, err := r.eng.Evaluate(ctx, g.Spec)
	if err != nil {
		r.metrics.failures.Inc()
		out.Error = "evaluate: " + err.Error()
		return out, nil, nil
	}
	out.OverallMeanDelayMS = res.OverallMeanDelayMS
	out.Utilization = res.Utilization
	delays := make([]float64, 0, len(res.Paths))
	reaches := make([]float64, 0, len(res.Paths))
	sum, minReach := 0.0, 1.0
	for _, p := range res.Paths {
		delays = append(delays, p.ExpectedDelayMS)
		reaches = append(reaches, p.Reachability)
		sum += p.ExpectedDelayMS
		if p.Reachability < minReach {
			minReach = p.Reachability
		}
	}
	if len(res.Paths) > 0 {
		out.MeanPathDelayMS = sum / float64(len(res.Paths))
	}
	out.MinReachability = minReach
	r.metrics.overallDelayMS.Observe(res.OverallMeanDelayMS)
	r.metrics.utilization.Observe(res.Utilization)
	if r.cfg.FailureSweep != nil {
		if err := r.sweepFailures(ctx, g.Spec, &out); err != nil {
			r.metrics.failures.Inc()
			out.Error = "failsweep: " + err.Error()
			return out, nil, nil
		}
	}
	return out, delays, reaches
}

// aggregate reduces the population to its cross-fleet percentile bands.
// Per-network measures (E[Gamma], utilization) are banded across
// networks; per-path measures (E[tau], reachability) are pooled across
// every path of every successful network.
func aggregate(nets []NetworkResult, paths, reaches [][]float64) Aggregate {
	agg := Aggregate{}
	var gammas, utils, pooledDelay, pooledReach, worstFail []float64
	for i, n := range nets {
		if n.Error != "" {
			agg.Failed++
			continue
		}
		agg.Evaluated++
		gammas = append(gammas, n.OverallMeanDelayMS)
		utils = append(utils, n.Utilization)
		pooledDelay = append(pooledDelay, paths[i]...)
		pooledReach = append(pooledReach, reaches[i]...)
		if n.FailureScenarios > 0 {
			worstFail = append(worstFail, n.WorstFailureDelayMS)
		}
	}
	agg.Paths = len(pooledDelay)
	agg.PathDelayMS = band(pooledDelay)
	agg.Reachability = band(pooledReach)
	agg.OverallDelayMS = band(gammas)
	agg.Utilization = band(utils)
	if len(worstFail) > 0 {
		b := band(worstFail)
		agg.WorstFailureDelayMS = &b
	}
	return agg
}

// band computes the p10/p50/p90 band of a sample; an empty sample yields
// the zero band.
func band(sample []float64) Band {
	if len(sample) == 0 {
		return Band{}
	}
	// Percentile only fails on an empty sample or a level outside [0,1],
	// both excluded here.
	p10, _ := stats.Percentile(sample, 0.10)
	p50, _ := stats.Percentile(sample, 0.50)
	p90, _ := stats.Percentile(sample, 0.90)
	return Band{P10: p10, P50: p50, P90: p90}
}
