package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"wirelesshart/internal/gen"
)

// Band is a cross-fleet percentile band.
type Band struct {
	P10 float64 `json:"p10"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
}

// Aggregate holds the population-level measures of a fleet run.
type Aggregate struct {
	// Evaluated counts networks that generated and solved cleanly;
	// Failed counts the rest (their errors live in the network list).
	Evaluated int `json:"evaluated"`
	Failed    int `json:"failed"`
	// Paths is the number of uplink paths pooled across the fleet.
	Paths int `json:"paths"`
	// PathDelayMS bands E[tau] across every path of every network.
	PathDelayMS Band `json:"pathDelayMS"`
	// Reachability bands per-path reachability R across the fleet.
	Reachability Band `json:"reachability"`
	// OverallDelayMS bands the per-network overall mean delay E[Gamma].
	OverallDelayMS Band `json:"overallDelayMS"`
	// Utilization bands the per-network exact utilization (Eq. 11).
	Utilization Band `json:"utilization"`
	// WorstFailureDelayMS bands each network's worst-case E[Gamma] under
	// the single-link failure sweep; nil when no sweep was configured, so
	// plain runs keep their byte-identical reports.
	WorstFailureDelayMS *Band `json:"worstFailureDelayMS,omitempty"`
}

// NetworkResult is one network's contribution to the fleet report.
type NetworkResult struct {
	Index              int     `json:"index"`
	Nodes              int     `json:"nodes,omitempty"`
	Links              int     `json:"links,omitempty"`
	Fup                int     `json:"fup,omitempty"`
	MeanPathDelayMS    float64 `json:"meanPathDelayMS,omitempty"`
	OverallMeanDelayMS float64 `json:"overallMeanDelayMS,omitempty"`
	Utilization        float64 `json:"utilization,omitempty"`
	MinReachability    float64 `json:"minReachability,omitempty"`
	// The failure-sweep measures are present only when Config.FailureSweep
	// is set: the network was re-solved FailureScenarios times, once per
	// single-link window failure, as one engine batch.
	FailureScenarios            int     `json:"failureScenarios,omitempty"`
	WorstFailureDelayMS         float64 `json:"worstFailureDelayMS,omitempty"`
	MeanFailureDelayMS          float64 `json:"meanFailureDelayMS,omitempty"`
	WorstFailureMinReachability float64 `json:"worstFailureMinReachability,omitempty"`
	// Error isolates a per-network generation or evaluation failure;
	// the network is excluded from the aggregate.
	Error string `json:"error,omitempty"`
}

// Report is the outcome of one fleet run. With the seed, population and
// params echoed, the report is self-reproducing: the same triple always
// regenerates it byte for byte.
type Report struct {
	Seed       uint64          `json:"seed"`
	Population int             `json:"population"`
	Params     gen.Params      `json:"params"`
	Aggregate  Aggregate       `json:"aggregate"`
	Networks   []NetworkResult `json:"networks,omitempty"`
}

// WriteJSON renders the report as indented JSON. perNetwork includes the
// per-network rows; without it only the seed echo and aggregate appear.
func (r *Report) WriteJSON(w io.Writer, perNetwork bool) error {
	out := *r
	if !perNetwork {
		out.Networks = nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// WriteCSV renders one row per network with the seed echoed in a leading
// comment, followed by comment rows for the aggregate bands.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# whart-fleet seed=%d population=%d\n", r.Seed, r.Population); err != nil {
		return err
	}
	if _, err := io.WriteString(w,
		"index,nodes,links,fup,meanPathDelayMS,overallMeanDelayMS,utilization,minReachability,error\n"); err != nil {
		return err
	}
	for _, n := range r.Networks {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%s,%s,%s,%s,%s\n",
			n.Index, n.Nodes, n.Links, n.Fup,
			ftoa(n.MeanPathDelayMS), ftoa(n.OverallMeanDelayMS),
			ftoa(n.Utilization), ftoa(n.MinReachability), csvQuote(n.Error))
		if err != nil {
			return err
		}
	}
	rows := []struct {
		name string
		b    Band
	}{
		{"pathDelayMS", r.Aggregate.PathDelayMS},
		{"reachability", r.Aggregate.Reachability},
		{"overallDelayMS", r.Aggregate.OverallDelayMS},
		{"utilization", r.Aggregate.Utilization},
	}
	if r.Aggregate.WorstFailureDelayMS != nil {
		rows = append(rows, struct {
			name string
			b    Band
		}{"worstFailureDelayMS", *r.Aggregate.WorstFailureDelayMS})
	}
	for _, row := range rows {
		_, err := fmt.Fprintf(w, "# %s p10=%s p50=%s p90=%s\n",
			row.name, ftoa(row.b.P10), ftoa(row.b.P50), ftoa(row.b.P90))
		if err != nil {
			return err
		}
	}
	return nil
}

// ftoa renders a float the shortest round-trippable way, matching the
// JSON encoder so both formats stay byte-deterministic per seed.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// csvQuote quotes a field only when it needs it.
func csvQuote(s string) string {
	for _, c := range s {
		if c == ',' || c == '"' || c == '\n' {
			return strconv.Quote(s)
		}
	}
	return s
}
