package fleet

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"wirelesshart/internal/engine"
	"wirelesshart/internal/gen"
	"wirelesshart/internal/spec"
)

// testConfig is a small fast fleet used by the behavioural tests.
func testConfig() Config {
	p := gen.DefaultParams()
	p.NodesMin = 8
	p.NodesMax = 14
	return Config{Seed: 3, Population: 8, Params: p}
}

func runFleet(t *testing.T, cfg Config) *Report {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRunDeterministic runs the same small fleet twice — through two
// independent runners, and once more with a single worker — and requires
// byte-identical reports: the worker pool must not leak scheduling
// nondeterminism into the output.
func TestRunDeterministic(t *testing.T) {
	encode := func(rep *Report) string {
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf, true); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := encode(runFleet(t, testConfig()))
	b := encode(runFleet(t, testConfig()))
	if a != b {
		t.Fatalf("two identical fleet runs differ:\n%s\n---\n%s", a, b)
	}
	serial := testConfig()
	serial.Workers = 1
	if c := encode(runFleet(t, serial)); c != a {
		t.Fatalf("single-worker run differs from pooled run:\n%s\n---\n%s", c, a)
	}
}

// TestGoldenAggregate pins the seed-1 100-network aggregate. The fleet
// pipeline is pure floating-point arithmetic in a fixed order, so these
// values are reproducible to the last bit; the tolerance only allows for
// future ulp-level libm differences.
func TestGoldenAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("golden fleet sweep skipped in -short mode")
	}
	rep := runFleet(t, Config{Seed: 1, Population: 100, Params: gen.DefaultParams()})
	a := rep.Aggregate
	if a.Evaluated != 100 || a.Failed != 0 {
		t.Fatalf("evaluated=%d failed=%d, want 100/0", a.Evaluated, a.Failed)
	}
	if a.Paths != 3067 {
		t.Fatalf("paths=%d, want 3067", a.Paths)
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"pathDelayMS.p10", a.PathDelayMS.P10, 281.0152269307998},
		{"pathDelayMS.p50", a.PathDelayMS.P50, 463.318755175966},
		{"pathDelayMS.p90", a.PathDelayMS.P90, 686.9353319176926},
		{"reachability.p10", a.Reachability.P10, 0.9939958126858882},
		{"reachability.p50", a.Reachability.P50, 0.9985125628499983},
		{"reachability.p90", a.Reachability.P90, 0.9999315159545055},
		{"overallDelayMS.p10", a.OverallDelayMS.P10, 320.10584445743655},
		{"overallDelayMS.p50", a.OverallDelayMS.P50, 449.7234742254354},
		{"overallDelayMS.p90", a.OverallDelayMS.P90, 626.1619612831194},
		{"utilization.p10", a.Utilization.P10, 0.44647104537588733},
		{"utilization.p50", a.Utilization.P50, 0.579463369092784},
		{"utilization.p90", a.Utilization.P90, 0.6574616292547198},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-9*math.Abs(c.want) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

// TestMetricsExposed checks that a sweep shows up in the engine's
// Prometheus exposition under the whart_fleet_* names.
func TestMetricsExposed(t *testing.T) {
	cfg := testConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Engine().Registry().WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		"whart_fleet_sweeps_total 1",
		"whart_fleet_networks_total 8",
		"whart_fleet_network_failures_total 0",
		"whart_fleet_overall_delay_ms_count 8",
		"whart_fleet_utilization_count 8",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestAggregateIsolatesFailures checks a failed network is excluded from
// every band while still being counted.
func TestAggregateIsolatesFailures(t *testing.T) {
	nets := []NetworkResult{
		{Index: 0, OverallMeanDelayMS: 100, Utilization: 0.5},
		{Index: 1, Error: "generate: boom"},
		{Index: 2, OverallMeanDelayMS: 300, Utilization: 0.7},
	}
	paths := [][]float64{{90, 110}, nil, {280, 320}}
	reaches := [][]float64{{0.99, 0.98}, nil, {0.97, 0.96}}
	agg := aggregate(nets, paths, reaches)
	if agg.Evaluated != 2 || agg.Failed != 1 {
		t.Fatalf("evaluated=%d failed=%d, want 2/1", agg.Evaluated, agg.Failed)
	}
	if agg.Paths != 4 {
		t.Fatalf("paths=%d, want 4", agg.Paths)
	}
	if agg.OverallDelayMS.P50 != 200 {
		t.Fatalf("overall p50 = %v, want 200 (median of 100 and 300)", agg.OverallDelayMS.P50)
	}
}

// TestRunCancellation pins that a cancelled context aborts the sweep.
func TestRunCancellation(t *testing.T) {
	r, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(ctx); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Population: 0, Params: gen.DefaultParams()}); err == nil {
		t.Error("zero population accepted")
	}
	bad := gen.DefaultParams()
	bad.Channels = 0
	if _, err := New(Config{Population: 1, Params: bad}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestWriteCSV checks the seed echo, the header, one row per network and
// the trailing band comments.
func TestWriteCSV(t *testing.T) {
	rep := runFleet(t, testConfig())
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "# whart-fleet seed=3 population=8" {
		t.Errorf("seed echo missing, got %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "index,nodes,links,") {
		t.Errorf("header missing, got %q", lines[1])
	}
	// 2 leading comments/header + 8 rows + 4 band comments.
	if len(lines) != 2+8+4 {
		t.Fatalf("got %d lines, want 14", len(lines))
	}
	for _, suffix := range []string{"pathDelayMS", "reachability", "overallDelayMS", "utilization"} {
		if !strings.Contains(buf.String(), "# "+suffix+" p10=") {
			t.Errorf("band comment for %s missing", suffix)
		}
	}
}

// TestWriteJSONPerNetwork checks the per-network list is gated on the
// flag and the seed is always echoed.
func TestWriteJSONPerNetwork(t *testing.T) {
	rep := runFleet(t, testConfig())
	var lean, full bytes.Buffer
	if err := rep.WriteJSON(&lean, false); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&full, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(lean.String(), `"networks"`) {
		t.Error("lean report includes per-network rows")
	}
	if !strings.Contains(full.String(), `"networks"`) {
		t.Error("full report misses per-network rows")
	}
	for _, s := range []string{lean.String(), full.String()} {
		if !strings.Contains(s, `"seed": 3`) {
			t.Error("seed echo missing from JSON report")
		}
	}
}

// TestFailureSweep routes a small fleet through the batched single-link
// failure sweep and checks the robustness measures against per-scenario
// scalar evaluations of the same cloned specs.
func TestFailureSweep(t *testing.T) {
	cfg := testConfig()
	cfg.Population = 3
	cfg.FailureSweep = &FailureSweep{FromSlot: 0, ToSlot: 20}
	rep := runFleet(t, cfg)
	if rep.Aggregate.Failed != 0 {
		t.Fatalf("%d networks failed", rep.Aggregate.Failed)
	}
	if rep.Aggregate.WorstFailureDelayMS == nil {
		t.Fatal("aggregate worst-failure band missing")
	}
	for _, n := range rep.Networks {
		if n.FailureScenarios != n.Links {
			t.Errorf("network %d: %d failure scenarios, want one per link (%d)",
				n.Index, n.FailureScenarios, n.Links)
		}
		if n.WorstFailureDelayMS < n.MeanFailureDelayMS {
			t.Errorf("network %d: worst %v < mean %v", n.Index, n.WorstFailureDelayMS, n.MeanFailureDelayMS)
		}
		if n.WorstFailureMinReachability > n.MinReachability {
			t.Errorf("network %d: failing a link raised min reachability %v -> %v",
				n.Index, n.MinReachability, n.WorstFailureMinReachability)
		}
	}

	// Pin the batched sweep of network 0 against scalar Evaluate calls.
	g, err := gen.Generate(cfg.Seed, 0, cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{})
	worst, sum := 0.0, 0.0
	for i := range g.Spec.Links {
		c := *g.Spec
		c.Links = append([]spec.Link(nil), g.Spec.Links...)
		c.Links[i].Failure = &spec.Failure{Kind: "window", FromSlot: 0, ToSlot: 20}
		res, err := eng.Evaluate(context.Background(), &c)
		if err != nil {
			t.Fatal(err)
		}
		if res.OverallMeanDelayMS > worst {
			worst = res.OverallMeanDelayMS
		}
		sum += res.OverallMeanDelayMS
	}
	n0 := rep.Networks[0]
	if math.Abs(n0.WorstFailureDelayMS-worst) > 1e-9 {
		t.Errorf("worst failure delay %v, scalar sweep says %v", n0.WorstFailureDelayMS, worst)
	}
	if math.Abs(n0.MeanFailureDelayMS-sum/float64(len(g.Spec.Links))) > 1e-9 {
		t.Errorf("mean failure delay %v, scalar sweep says %v",
			n0.MeanFailureDelayMS, sum/float64(len(g.Spec.Links)))
	}

	// The sweep must stay deterministic too.
	var a, b bytes.Buffer
	if err := rep.WriteJSON(&a, true); err != nil {
		t.Fatal(err)
	}
	if err := runFleet(t, cfg).WriteJSON(&b, true); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("failure-sweep report is not deterministic")
	}
}

func TestFailureSweepValidation(t *testing.T) {
	cfg := testConfig()
	cfg.FailureSweep = &FailureSweep{FromSlot: 10, ToSlot: 10}
	if _, err := New(cfg); err == nil {
		t.Error("empty failure window must be rejected")
	}
	cfg.FailureSweep = &FailureSweep{FromSlot: -1, ToSlot: 5}
	if _, err := New(cfg); err == nil {
		t.Error("negative failure window must be rejected")
	}
}
