package fleet

import "wirelesshart/internal/obs"

// overallDelayBuckets bound the per-network E[Gamma] histogram in ms:
// generated 20-40 node networks land in the few-hundred-ms range, with
// the +Inf bucket catching pathological fleets.
var overallDelayBuckets = []float64{50, 100, 150, 200, 300, 400, 600, 800, 1200, 2000}

// utilizationBuckets bound the per-network utilization histogram.
var utilizationBuckets = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}

// metrics are the fleet counters and histograms, registered on the
// engine's obs registry so /metrics/prom exposes the sweep next to the
// solves it drives. Registration is idempotent: several runners sharing
// one engine share one set of series.
type metrics struct {
	sweeps           *obs.Counter
	networks         *obs.Counter
	failures         *obs.Counter
	failureScenarios *obs.Counter
	overallDelayMS   *obs.Histogram
	utilization      *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		sweeps:   reg.Counter("whart_fleet_sweeps_total", "Fleet sweeps run."),
		networks: reg.Counter("whart_fleet_networks_total", "Generated networks evaluated, failures included."),
		failures: reg.Counter("whart_fleet_network_failures_total", "Networks whose generation or evaluation failed."),
		failureScenarios: reg.Counter("whart_fleet_failure_scenarios_total",
			"Single-link failure scenarios batch-solved across all failure sweeps."),
		overallDelayMS: reg.Histogram("whart_fleet_overall_delay_ms",
			"Per-network overall mean delay E[Gamma] in milliseconds.", overallDelayBuckets),
		utilization: reg.Histogram("whart_fleet_utilization",
			"Per-network exact utilization.", utilizationBuckets),
	}
}
