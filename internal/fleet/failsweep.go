package fleet

import (
	"context"
	"fmt"

	"wirelesshart/internal/spec"
)

// FailureSweep configures the optional per-network robustness sweep:
// every link of every generated network is failed in turn with a window
// failure, and all single-link scenarios are evaluated as one engine
// batch, so the sweep pays one lock-step CSR traversal per shared path
// structure instead of one full solve per link.
type FailureSweep struct {
	// FromSlot and ToSlot bound the injected failure: the failed link is
	// DOWN during uplink slots [FromSlot, ToSlot) of each reporting
	// interval.
	FromSlot int
	ToSlot   int
}

func (f *FailureSweep) validate() error {
	if f.FromSlot < 0 || f.ToSlot <= f.FromSlot {
		return fmt.Errorf("fleet: failure sweep window [%d, %d) is empty", f.FromSlot, f.ToSlot)
	}
	return nil
}

// sweepFailures stresses one generated network: each of its links gets
// the configured window failure in a cloned spec, the clones are solved
// through Engine.EvaluateBatch, and the worst- and mean-case measures
// land on the network's report row.
func (r *Runner) sweepFailures(ctx context.Context, base *spec.Spec, out *NetworkResult) error {
	fsw := r.cfg.FailureSweep
	scenarios := make([]*spec.Spec, len(base.Links))
	for i := range base.Links {
		c := *base
		c.Links = append([]spec.Link(nil), base.Links...)
		c.Links[i].Failure = &spec.Failure{Kind: "window", FromSlot: fsw.FromSlot, ToSlot: fsw.ToSlot}
		scenarios[i] = &c
	}
	results, err := r.eng.EvaluateBatch(ctx, scenarios)
	if err != nil {
		return err
	}
	r.metrics.failureScenarios.Add(int64(len(results)))
	out.FailureScenarios = len(results)
	worst, sum, minReach := 0.0, 0.0, 1.0
	for _, res := range results {
		if res.OverallMeanDelayMS > worst {
			worst = res.OverallMeanDelayMS
		}
		sum += res.OverallMeanDelayMS
		for _, p := range res.Paths {
			if p.Reachability < minReach {
				minReach = p.Reachability
			}
		}
	}
	out.WorstFailureDelayMS = worst
	out.MeanFailureDelayMS = sum / float64(len(results))
	out.WorstFailureMinReachability = minReach
	return nil
}
