package fleet

import (
	"context"
	"testing"

	"wirelesshart/internal/gen"
)

// BenchmarkFleetSweep measures a small end-to-end fleet sweep: generate,
// schedule, solve and aggregate four networks per iteration. Later
// iterations exercise the warm-cache path the fleet relies on.
func BenchmarkFleetSweep(b *testing.B) {
	p := gen.DefaultParams()
	p.NodesMin = 10
	p.NodesMax = 16
	r, err := New(Config{Seed: 1, Population: 4, Params: p})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
