// Typicalnetwork evaluates the paper's typical plant network (Fig. 12):
// ten field devices behind one gateway with the HART Foundation's 30/50/20
// hop distribution. It compares the shortest-first schedule eta_a with a
// longest-first alternative, injects a one-cycle failure on the busiest
// link, and cross-checks the analytical model against the discrete-event
// simulator — Sections VI-A through VI-C of the paper in one program.
package main

import (
	"fmt"
	"log"

	"wirelesshart"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("typicalnetwork: ")

	net, err := wirelesshart.Typical()
	if err != nil {
		log.Fatal(err)
	}

	// Regular control (Is = 4) under eta_a.
	etaA, err := net.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== eta_a (shortest-first), Is = 4, BER 2e-4 ==")
	fmt.Printf("schedule: %s\n", etaA.Schedule)
	for _, p := range etaA.Paths {
		fmt.Printf("  %-4s %d hops  R=%.5f  E[tau]=%5.1f ms  slots=%v\n",
			p.Source, p.Hops, p.Reachability, p.ExpectedDelayMS, p.Slots)
	}
	fmt.Printf("overall mean delay E[Gamma] = %.1f ms (paper: 235)\n", etaA.OverallMeanDelayMS)
	fmt.Printf("network utilization = %.4f\n\n", etaA.Utilization)

	// The paper's eta_b: longest paths first (reconstructed order).
	etaB, err := net.Analyze(wirelesshart.Priority(
		"n9", "n10", "n4", "n5", "n6", "n8", "n7", "n1", "n2", "n3"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== eta_b (longest-first): balancing the delays ==")
	for _, p := range etaB.Paths {
		a, _ := etaA.PathBySource(p.Source)
		fmt.Printf("  %-4s E[tau]: eta_a=%5.1f ms -> eta_b=%5.1f ms\n",
			p.Source, a.ExpectedDelayMS, p.ExpectedDelayMS)
	}
	fmt.Printf("E[Gamma]: eta_a=%.1f ms, eta_b=%.1f ms (paper: 235 vs 272; eta_b trades mean for balance)\n\n",
		etaA.OverallMeanDelayMS, etaB.OverallMeanDelayMS)

	// Section VI-C: link e3 (n3-G) fails for one cycle (20 uplink slots).
	injected, err := net.Analyze(wirelesshart.LinkDownDuring("n3", "G", 1, 21))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== one-cycle failure of e3 = n3-G (Table III scenario) ==")
	for _, name := range []string{"n3", "n7", "n8", "n10"} {
		before, _ := etaA.PathBySource(name)
		after, _ := injected.PathBySource(name)
		fmt.Printf("  %-4s R: %.4f -> %.4f\n", name, before.Reachability, after.Reachability)
	}
	fmt.Println()

	// Multi-channel schedules: the standard permits one transaction per
	// frequency channel per slot.
	multi, err := net.Analyze(wirelesshart.Channels(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== two frequency channels (TDMA+FDMA) ==")
	fmt.Printf("frame shrinks %d -> %d slots; E[Gamma] %.1f -> %.1f ms\n",
		etaA.Fup, multi.Fup, etaA.OverallMeanDelayMS, multi.OverallMeanDelayMS)
	fmt.Printf("schedule: %s\n\n", multi.Schedule)

	// Where to invest: rank links by improvement potential.
	suggestions, err := net.SuggestImprovements(0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== link improvement suggestions (availability +0.05 probe) ==")
	for _, s := range suggestions[:3] {
		fmt.Printf("  %s-%s (carries %d paths): mean R gain %.6f\n",
			s.A, s.B, s.SharedBy, s.MeanReachabilityGain)
	}
	fmt.Println()

	// Cross-validation against the discrete-event simulator.
	sim, err := net.Simulate(20000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== DES cross-validation (20000 reporting intervals) ==")
	for _, sp := range sim.Paths {
		ap, _ := etaA.PathBySource(sp.Source)
		fmt.Printf("  %-4s R: analytic=%.5f simulated=%.5f (+-%.5f)\n",
			sp.Source, ap.Reachability, sp.Reachability, sp.ReachabilityCI)
	}
	fmt.Printf("utilization: analytic=%.4f simulated=%.4f\n", etaA.Utilization, sim.Utilization)
}
