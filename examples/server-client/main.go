// Server-client starts the evaluation engine's HTTP API in-process on an
// ephemeral port and plays both sides: it POSTs the Section VI-E
// routing-prediction query (the routingadvisor example's Table IV
// candidates) to /v1/predict, repeats a /v1/network evaluation to exercise
// the scenario cache, and then reads /metrics to show the second request
// was served without a second DTMC solve.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"wirelesshart"
	"wirelesshart/internal/engine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("server-client: ")

	// Server side: engine + HTTP handler on a loopback listener. A real
	// deployment runs `whart-server -addr :8080` instead.
	eng := engine.New(engine.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: engine.NewHandler(eng, 30*time.Second)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("engine API listening on %s\n\n", base)

	// Client side: the scenario is the paper's typical network, exported
	// from the fluent API via the Spec build hook.
	net10, err := wirelesshart.Typical()
	if err != nil {
		log.Fatal(err)
	}
	scenario, err := net10.Spec()
	if err != nil {
		log.Fatal(err)
	}

	// The joining node hears four attachment candidates (Table IV plus the
	// two extras from examples/routingadvisor).
	var predicted struct {
		Key         string `json:"key"`
		Predictions []struct {
			Via          string  `json:"via"`
			Hops         int     `json:"hops"`
			Reachability float64 `json:"reachability"`
		} `json:"predictions"`
		Recommended string `json:"recommended"`
	}
	post(base+"/v1/predict", map[string]any{
		"scenario": scenario,
		"candidates": []map[string]any{
			{"via": "n4", "ebN0": 7},
			{"via": "n1", "ebN0": 6},
			{"via": "n9", "ebN0": 12},
			{"via": "n3", "ebN0": 4},
		},
	}, &predicted)
	fmt.Printf("routing prediction (scenario %s...):\n", predicted.Key[:12])
	for i, p := range predicted.Predictions {
		fmt.Printf("  %d. via %-4s %d hops  R=%.4f\n", i+1, p.Via, p.Hops, p.Reachability)
	}
	fmt.Printf("recommended attachment: %s\n\n", predicted.Recommended)

	// Evaluate the whole network twice; the second round trip must be a
	// cache hit.
	var result engine.Result
	for i := 0; i < 2; i++ {
		post(base+"/v1/network", map[string]any{"scenario": scenario}, &result)
	}
	fmt.Printf("network evaluation: E[Gamma]=%.2f ms  U=%.4f over %d paths\n\n",
		result.OverallMeanDelayMS, result.Utilization, len(result.Paths))

	var metrics struct {
		Engine engine.Snapshot `json:"engine"`
	}
	get(base+"/metrics", &metrics)
	fmt.Printf("metrics: %d solve(s), %d cache hit(s), %d entries cached\n",
		metrics.Engine.Solves, metrics.Engine.CacheHits, metrics.Engine.CacheLen)
	fmt.Printf("         p50 solve latency %.2f ms\n", metrics.Engine.SolveTime.P50MS)
}

func post(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("%s: %s", resp.Status, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
