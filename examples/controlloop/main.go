// Controlloop realizes the paper's stated future work: feed the computed
// reachability of a WirelessHART uplink path directly into a control loop
// and study stability under message loss. A PID controller regulates a
// first-order process; the sensor's measurements traverse the 3-hop
// example path, arriving (or not) according to the analytical cycle
// probabilities at each link availability.
package main

import (
	"fmt"
	"log"

	"wirelesshart"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("controlloop: ")

	// A plant behind a 3-hop uplink: n1 -> n2 -> n3 -> G.
	availabilities := []float64{0.948, 0.903, 0.830, 0.774, 0.693}

	fmt.Println("PID loop over the 3-hop example path, 2000 reporting intervals each")
	fmt.Printf("%-10s %-8s %-10s %-10s %-8s %-9s\n",
		"pi(up)", "reach", "ISE", "max|err|", "lost", "settled@")
	for _, avail := range availabilities {
		cycles, err := wirelesshart.ExamplePath([]int{3, 6, 7}, 7, 4, avail)
		if err != nil {
			log.Fatal(err)
		}
		var reach float64
		for _, p := range cycles {
			reach += p
		}
		loop := wirelesshart.ControlLoop{
			Kp:        1.5,
			Ki:        1.2,
			OutMin:    -10,
			OutMax:    10,
			PlantGain: 1,
			// A plant faster than the reporting interval: exactly the
			// regime where a lost sample leaves the controller blind
			// long enough to matter.
			PlantTau:         0.4,
			Setpoint:         1,
			PeriodS:          0.28, // Is * Fup * 2 frames * 10 ms
			Intervals:        2000,
			Seed:             31,
			DisturbanceEvery: 3, // recurring load steps
			DisturbanceSize:  -0.5,
		}
		out, err := loop.Run(cycles)
		if err != nil {
			log.Fatal(err)
		}
		settled := "never"
		if out.SettledAt >= 0 {
			settled = fmt.Sprintf("%d", out.SettledAt)
		}
		fmt.Printf("%-10.3f %-8.4f %-10.3f %-10.3f %-8d %-9s\n",
			avail, reach, out.ISE, out.MaxAbsError, out.Lost, settled)
	}
	fmt.Println("\ntakeaway: tracking error grows monotonically as the link availability falls;")
	fmt.Println("below pi(up) ~ 0.77 the loss rate visibly degrades control — the quantitative")
	fmt.Println("version of the paper's control-stability concern")
}
