// Routingadvisor reproduces the paper's Section VI-E scenario: a new field
// device joins the mesh and must pick its attachment point. The advisor
// measures each candidate peer link's SNR (here: given), predicts the
// composed path's cycle probabilities with the paper's convolution rule
// (Eq. 12), and recommends the candidate with the best reachability —
// breaking ties by expected delay, exactly as the paper argues.
package main

import (
	"fmt"
	"log"

	"wirelesshart"
)

// candidate is one possible attachment point with the measured SNR of the
// peer link toward it.
type candidate struct {
	via  string
	ebN0 float64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("routingadvisor: ")

	net, err := wirelesshart.Typical()
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Table IV: node 5 hears node "n4" (2-hop path) at
	// Eb/N0 = 7 and node "n1" (1-hop path) at Eb/N0 = 6. We add two more
	// realistic candidates to make the advisor earn its keep.
	candidates := []candidate{
		{via: "n4", ebN0: 7},
		{via: "n1", ebN0: 6},
		{via: "n9", ebN0: 12}, // excellent link, but a long existing path
		{via: "n3", ebN0: 4},  // short path, poor link
	}

	ebN0s := make(map[string]float64, len(candidates))
	var preds []*wirelesshart.Prediction
	for _, c := range candidates {
		pred, err := net.PredictAttachment(c.via, c.ebN0)
		if err != nil {
			log.Fatal(err)
		}
		ebN0s[pred.Via] = c.ebN0
		preds = append(preds, pred)
	}

	fmt.Println("attachment candidates for the joining node:")
	for _, p := range preds {
		fmt.Printf("  via %-4s (Eb/N0=%4.1f, composed %d hops): gc=%v  R=%.4f\n",
			p.Via, ebN0s[p.Via], p.Hops, fmtCycles(p.CycleProbs), p.Reachability)
	}

	// Rank: reachability first, then fewer hops (shorter expected delay:
	// each extra hop costs one more schedule slot, ~10 ms).
	ranked := wirelesshart.RankPredictions(preds)

	best := ranked[0]
	fmt.Printf("\nrecommendation: attach via %s (R=%.4f, %d hops)\n",
		best.Via, best.Reachability, best.Hops)
	fmt.Println("paper's Table IV subset: alpha (via 2-hop, Eb/N0=7) vs beta (via 1-hop, Eb/N0=6)")
	fmt.Println("  -> R_alpha ~ R_beta = 99.45%; beta wins on delay, as the paper concludes")
}

func fmtCycles(g []float64) string {
	s := "["
	for i, p := range g {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4f", p)
	}
	return s + "]"
}
