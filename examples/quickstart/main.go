// Quickstart reproduces the paper's Section V-A example analysis end to
// end: a three-hop uplink path n1 -> n2 -> n3 -> G scheduled in slots 3, 6
// and 7 of a 7-slot frame, homogeneous steady-state links, reporting
// interval Is = 4.
//
// Expected output (paper values): cycle probabilities 0.4219 / 0.3164 /
// 0.1582 / 0.0659, reachability 0.9624, expected delay 190.8 ms.
package main

import (
	"fmt"
	"log"

	"wirelesshart"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// The one-call form: a standalone homogeneous path.
	cycles, err := wirelesshart.ExamplePath([]int{3, 6, 7}, 7, 4, 0.75)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Section V-A example path: n1 -> n2 -> n3 -> G, slots (3,6,7), Fup=7, Is=4")
	var reach float64
	for i, p := range cycles {
		fmt.Printf("  P(arrive in cycle %d) = %.4f\n", i+1, p)
		reach += p
	}
	fmt.Printf("  reachability R = %.4f (paper: 0.9624)\n", reach)
	fmt.Printf("  message loss per interval = %.4f\n\n", 1-reach)

	// The full network form: build the same path as a mesh and let the
	// library route, schedule and analyze it.
	net := wirelesshart.New()
	must(net.Gateway("G"))
	for _, n := range []string{"n3", "n2", "n1"} {
		must(net.Device(n))
	}
	must(net.Link("n3", "G", wirelesshart.Availability(0.75)))
	must(net.Link("n2", "n3", wirelesshart.Availability(0.75)))
	must(net.Link("n1", "n2", wirelesshart.Availability(0.75)))

	report, err := net.Analyze(
		wirelesshart.ReportingInterval(4),
		// The paper's exact schedule: n1's hops in slots 3, 6, 7 of a
		// 7-slot frame.
		wirelesshart.ExplicitSlots(7, map[string][]int{"n1": {3, 6, 7}}),
	)
	if err != nil {
		log.Fatal(err)
	}
	p1, ok := report.PathBySource("n1")
	if !ok {
		log.Fatal("path n1 missing")
	}
	fmt.Printf("mesh analysis with the paper's schedule %s:\n", report.Schedule)
	fmt.Printf("  route: %v\n", p1.Route)
	fmt.Printf("  reachability = %.4f\n", p1.Reachability)
	fmt.Printf("  expected delay = %.1f ms\n", p1.ExpectedDelayMS)
	fmt.Printf("  delay distribution:\n")
	for _, d := range p1.DelayDistribution {
		fmt.Printf("    %4.0f ms: %.4f\n", d.MS, d.Prob)
	}
	fmt.Printf("  expected intervals to first loss E[N] = %.1f\n", p1.ExpectedIntervalsToLoss)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
