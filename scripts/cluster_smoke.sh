#!/usr/bin/env bash
# Cluster smoke test: boots a 3-replica whart-server cluster sharing one
# consistent-hash ring and walks the distributed engine through its whole
# lifecycle:
#
#   1. spread scenarios across replicas and observe peer forwarding
#      (every miss is solved exactly once, on its ring owner);
#   2. re-ask every scenario on a *different* replica and require zero new
#      solves — the cross-replica cache-hit guarantee;
#   3. SIGTERM one replica and require the survivors to answer everything,
#      with whart_engine_peer_degraded_local_total proving the dead
#      owner's keys were solved locally instead of failing;
#   4. restart the killed replica from its SIGTERM-drain snapshot and
#      require its cached scenarios to be answered with zero solver
#      invocations (whart_engine_solves_total stays 0).
#
# Everything is deterministic: the ring, the canonical scenario keys and
# therefore the ownership split are fixed, so this never flakes on
# placement.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT_A=18471
PORT_B=18472
PORT_C=18473
URL_A="http://127.0.0.1:$PORT_A"
URL_B="http://127.0.0.1:$PORT_B"
URL_C="http://127.0.0.1:$PORT_C"

WORK=$(mktemp -d)
PIDS=()
cleanup() {
	for pid in "${PIDS[@]:-}"; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
	echo "cluster smoke: FAIL: $*" >&2
	exit 1
}

echo "cluster smoke: building binaries"
go build -o "$WORK/whart-server" ./cmd/whart-server
go build -o "$WORK/whart" ./cmd/whart

# start_replica ID PORT PEERS -> appends the pid to PIDS
start_replica() {
	local id=$1 port=$2 peers=$3
	"$WORK/whart-server" -addr "127.0.0.1:$port" -id "$id" -peers "$peers" \
		-snapshot "$WORK/$id.snap" >>"$WORK/$id.log" 2>&1 &
	PIDS+=($!)
}

wait_ready() {
	local url=$1
	for _ in $(seq 1 100); do
		if curl -fsS "$url/readyz" >/dev/null 2>&1; then
			return 0
		fi
		sleep 0.1
	done
	fail "$url never became ready"
}

# metric URL NAME -> prints the counter value (0 when unset)
metric() {
	curl -fsS "$1/metrics/prom" | awk -v m="$2" '$1 == m {print $2; found=1} END {if (!found) print 0}'
}

cluster_metric() {
	local name=$1 total=0 v
	for url in "$URL_A" "$URL_B" "$URL_C"; do
		if v=$(metric "$url" "$name" 2>/dev/null); then
			total=$((total + v))
		fi
	done
	echo "$total"
}

# scenario N -> emits the typical spec with reportingInterval N to stdout
scenario() {
	sed "s/\"reportingInterval\": 4/\"reportingInterval\": $1/" "$WORK/base.json"
}

# evaluate URL N -> POST scenario N to URL's /v1/evaluate, require 200
evaluate() {
	local url=$1 n=$2 code
	printf '{"scenario": %s, "source": "n10"}' "$(scenario "$n")" >"$WORK/req.json"
	code=$(curl -s -o "$WORK/resp.json" -w '%{http_code}' \
		-X POST --data-binary @"$WORK/req.json" "$url/v1/evaluate")
	[ "$code" = 200 ] || fail "POST $url/v1/evaluate interval=$n: HTTP $code: $(cat "$WORK/resp.json")"
}

PEERS_A="b=$URL_B,c=$URL_C"
PEERS_B="a=$URL_A,c=$URL_C"
PEERS_C="a=$URL_A,b=$URL_B"

echo "cluster smoke: starting replicas a, b, c"
start_replica a "$PORT_A" "$PEERS_A"
start_replica b "$PORT_B" "$PEERS_B"
start_replica c "$PORT_C" "$PEERS_C"
wait_ready "$URL_A"; wait_ready "$URL_B"; wait_ready "$URL_C"

ring_self=$(curl -fsS "$URL_C/readyz" | jq -r '.ring.self')
ring_size=$(curl -fsS "$URL_C/readyz" | jq '.ring.members | length')
[ "$ring_self" = "c" ] && [ "$ring_size" = 3 ] || fail "readyz ring: self=$ring_self members=$ring_size"

"$WORK/whart" -typical -emit-spec >"$WORK/base.json"

echo "cluster smoke: phase 1 - spreading 9 scenarios across the replicas"
urls=("$URL_A" "$URL_B" "$URL_C")
for n in $(seq 1 9); do
	evaluate "${urls[$((n % 3))]}" "$n"
done
solves=$(cluster_metric whart_engine_solves_total)
forwarded=$(cluster_metric whart_engine_peer_forwarded_total)
served=$(cluster_metric whart_engine_peer_served_total)
[ "$solves" = 9 ] || fail "phase 1: cluster solved $solves scenarios, want exactly 9"
[ "$forwarded" -gt 0 ] || fail "phase 1: no solve was forwarded to its ring owner"
[ "$served" -gt 0 ] || fail "phase 1: no replica served a peer solve"
echo "cluster smoke: phase 1 ok ($solves solves, $forwarded forwarded, $served peer-served)"

echo "cluster smoke: phase 2 - same scenarios via different replicas"
for n in $(seq 1 9); do
	evaluate "${urls[$(((n + 1) % 3))]}" "$n"
done
solves2=$(cluster_metric whart_engine_solves_total)
hits=$(cluster_metric whart_engine_cache_hits_total)
[ "$solves2" = "$solves" ] || fail "phase 2: solves grew $solves -> $solves2; cross-replica cache missed"
[ "$hits" -gt 0 ] || fail "phase 2: no cache hits recorded anywhere"
echo "cluster smoke: phase 2 ok (still $solves2 solves, $hits cache hits cluster-wide)"

echo "cluster smoke: phase 3 - SIGTERM replica c, survivors keep answering"
kill -TERM "${PIDS[2]}"
wait "${PIDS[2]}" 2>/dev/null || true
[ -s "$WORK/c.snap" ] || fail "phase 3: replica c wrote no snapshot on drain"
degraded_before=$(( $(metric "$URL_A" whart_engine_peer_degraded_local_total) \
	+ $(metric "$URL_B" whart_engine_peer_degraded_local_total) ))
for n in $(seq 10 21); do
	evaluate "${urls[$((n % 2))]}" "$n"
done
degraded_after=$(( $(metric "$URL_A" whart_engine_peer_degraded_local_total) \
	+ $(metric "$URL_B" whart_engine_peer_degraded_local_total) ))
[ "$degraded_after" -gt "$degraded_before" ] || \
	fail "phase 3: no degraded-local solve despite c being down (before=$degraded_before after=$degraded_after)"
echo "cluster smoke: phase 3 ok (survivors answered 12 scenarios, $((degraded_after - degraded_before)) degraded-local)"

echo "cluster smoke: phase 4 - restart c from its snapshot"
start_replica c "$PORT_C" "$PEERS_C"
wait_ready "$URL_C"
snap_state=$(curl -fsS "$URL_C/readyz" | jq -r '.snapshot.state')
snap_entries=$(curl -fsS "$URL_C/readyz" | jq '.snapshot.entries')
[ "$snap_state" = loaded ] || fail "phase 4: snapshot state $snap_state, want loaded"
[ "$snap_entries" -gt 0 ] || fail "phase 4: snapshot restored 0 entries"
# Scenarios c had cached when it was killed (asked directly in phases 1-2)
# must be answered from the restored cache with zero solver invocations.
for n in 1 2 4 5 7 8; do
	evaluate "$URL_C" "$n"
done
c_solves=$(metric "$URL_C" whart_engine_solves_total)
c_hits=$(metric "$URL_C" whart_engine_cache_hits_total)
c_loads=$(metric "$URL_C" whart_engine_snapshot_loads_total)
[ "$c_solves" = 0 ] || fail "phase 4: restarted replica solved $c_solves scenarios, want 0 (cache was warm)"
[ "$c_hits" = 6 ] || fail "phase 4: restarted replica served $c_hits cache hits, want 6"
[ "$c_loads" = 1 ] || fail "phase 4: snapshot_loads_total=$c_loads, want 1"
echo "cluster smoke: phase 4 ok ($snap_entries entries restored, 6 hits, 0 solves)"

echo "cluster smoke: batch across replicas"
{
	printf '{"scenarios": ['
	scenario 22
	printf ','
	scenario 23
	printf ','
	scenario 1
	printf ']}'
} >"$WORK/req.json"
code=$(curl -s -o "$WORK/resp.json" -w '%{http_code}' \
	-X POST --data-binary @"$WORK/req.json" "$URL_C/v1/batch")
[ "$code" = 200 ] || fail "POST /v1/batch: HTTP $code: $(cat "$WORK/resp.json")"
jq -e '.results | length == 3' "$WORK/resp.json" >/dev/null || fail "batch returned wrong shape"

echo "cluster smoke: PASS"
