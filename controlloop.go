package wirelesshart

import (
	"wirelesshart/internal/control"
)

// ControlLoop configures a closed-loop study over a lossy uplink: a PID
// controller and a first-order plant driven by the cycle probability
// function of an analyzed path (the paper's future-work extension). Zero
// gains are valid (that term is disabled).
type ControlLoop struct {
	// Kp, Ki, Kd are the PID gains.
	Kp, Ki, Kd float64
	// OutMin and OutMax clamp the actuation (required: OutMin < OutMax).
	OutMin, OutMax float64
	// PlantGain and PlantTau define the first-order process.
	PlantGain, PlantTau float64
	// Setpoint is the control target.
	Setpoint float64
	// PeriodS is the reporting-interval duration in seconds.
	PeriodS float64
	// Intervals is the number of reporting intervals to simulate.
	Intervals int
	// Seed drives the message-loss process.
	Seed int64
	// DisturbanceEvery, when positive, adds a load disturbance of
	// DisturbanceSize to the plant output every that many intervals —
	// losses then cost real tracking error instead of only stretching
	// the initial transient.
	DisturbanceEvery int
	// DisturbanceSize is the magnitude of each disturbance.
	DisturbanceSize float64
}

// ControlLoopOutcome summarizes a closed-loop run.
type ControlLoopOutcome struct {
	// ISE is the integral of squared tracking error.
	ISE float64
	// MaxAbsError is the worst tracking error observed.
	MaxAbsError float64
	// Delivered and Lost count sensor messages.
	Delivered, Lost int
	// FinalOutput is the plant output at the end.
	FinalOutput float64
	// SettledAt is the first interval with the loop inside the 2% band
	// through the end, or -1.
	SettledAt int
}

// Run simulates the loop against the given cycle probability function
// (e.g. PathReport.CycleProbs from Analyze).
func (c ControlLoop) Run(cycleProbs []float64) (*ControlLoopOutcome, error) {
	pid, err := control.NewPID(c.Kp, c.Ki, c.Kd, c.OutMin, c.OutMax)
	if err != nil {
		return nil, err
	}
	plant, err := control.NewFirstOrderPlant(c.PlantGain, c.PlantTau)
	if err != nil {
		return nil, err
	}
	var disturbance func(int) float64
	if c.DisturbanceEvery > 0 {
		every, size := c.DisturbanceEvery, c.DisturbanceSize
		disturbance = func(i int) float64 {
			if i > 0 && i%every == 0 {
				return size
			}
			return 0
		}
	}
	res, err := control.RunLoop(control.LoopConfig{
		PID:         pid,
		Plant:       plant,
		Setpoint:    c.Setpoint,
		PeriodS:     c.PeriodS,
		Intervals:   c.Intervals,
		CycleProbs:  cycleProbs,
		Seed:        c.Seed,
		Disturbance: disturbance,
	})
	if err != nil {
		return nil, err
	}
	return &ControlLoopOutcome{
		ISE:         res.ISE,
		MaxAbsError: res.MaxAbsError,
		Delivered:   res.Delivered,
		Lost:        res.Lost,
		FinalOutput: res.FinalOutput,
		SettledAt:   res.SettledAt,
	}, nil
}
