package wirelesshart_test

import (
	"fmt"
	"log"

	"wirelesshart"
)

// ExampleExamplePath reproduces the paper's Section V-A cycle
// probabilities for the 3-hop example path.
func ExampleExamplePath() {
	cycles, err := wirelesshart.ExamplePath([]int{3, 6, 7}, 7, 4, 0.75)
	if err != nil {
		log.Fatal(err)
	}
	var r float64
	for i, p := range cycles {
		fmt.Printf("cycle %d: %.4f\n", i+1, p)
		r += p
	}
	fmt.Printf("reachability: %.4f\n", r)
	// Output:
	// cycle 1: 0.4219
	// cycle 2: 0.3164
	// cycle 3: 0.1582
	// cycle 4: 0.0659
	// reachability: 0.9624
}

// ExampleNetwork_Analyze analyzes a two-device mesh built from physical
// link parameters.
func ExampleNetwork_Analyze() {
	net := wirelesshart.New()
	if err := net.Gateway("G"); err != nil {
		log.Fatal(err)
	}
	for _, d := range []string{"sensor", "relay"} {
		if err := net.Device(d); err != nil {
			log.Fatal(err)
		}
	}
	if err := net.Link("relay", "G", wirelesshart.BER(1e-4)); err != nil {
		log.Fatal(err)
	}
	if err := net.Link("sensor", "relay", wirelesshart.EbN0(7)); err != nil {
		log.Fatal(err)
	}
	report, err := net.Analyze(wirelesshart.ReportingInterval(4))
	if err != nil {
		log.Fatal(err)
	}
	p, _ := report.PathBySource("sensor")
	fmt.Printf("route: %v\n", p.Route)
	fmt.Printf("reachability: %.4f\n", p.Reachability)
	// Output:
	// route: [sensor relay G]
	// reachability: 0.9996
}

// ExampleNetwork_SuggestImprovements ranks the typical network's links by
// improvement potential: the gateway link of n3 carries four paths and
// tops the list.
func ExampleNetwork_SuggestImprovements() {
	net, err := wirelesshart.Typical()
	if err != nil {
		log.Fatal(err)
	}
	suggestions, err := net.SuggestImprovements(0.05)
	if err != nil {
		log.Fatal(err)
	}
	top := suggestions[0]
	fmt.Printf("improve %s-%s first (shared by %d paths)\n", top.A, top.B, top.SharedBy)
	// Output:
	// improve n3-G first (shared by 4 paths)
}

// ExampleControlLoop_Run closes a PID loop over a lossy 3-hop uplink.
func ExampleControlLoop_Run() {
	cycles, err := wirelesshart.ExamplePath([]int{3, 6, 7}, 7, 4, 0.903)
	if err != nil {
		log.Fatal(err)
	}
	loop := wirelesshart.ControlLoop{
		Kp: 0.8, Ki: 0.5, OutMin: -10, OutMax: 10,
		PlantGain: 1, PlantTau: 2, Setpoint: 1,
		PeriodS: 0.28, Intervals: 400, Seed: 1,
	}
	out, err := loop.Run(cycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %d of %d samples, final output %.2f\n",
		out.Delivered, out.Delivered+out.Lost, out.FinalOutput)
	// Output:
	// delivered 399 of 400 samples, final output 1.00
}

// ExampleRequiredInterval sizes the reporting interval for a reliability
// target — the design-time inverse of the paper's fast-control trade-off.
func ExampleRequiredInterval() {
	// How many super-frames does a 3-hop path at pi(up) = 0.83 need for
	// 99% delivery? And for 99.9%?
	is99, err := wirelesshart.RequiredInterval(3, 0.83, 0.99, 16)
	if err != nil {
		log.Fatal(err)
	}
	is999, err := wirelesshart.RequiredInterval(3, 0.83, 0.999, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("99%%: Is = %d; 99.9%%: Is = %d\n", is99, is999)
	// Output:
	// 99%: Is = 4; 99.9%: Is = 6
}

// ExampleNetwork_PredictAttachment picks the better of two attachment
// points for a joining node, as in the paper's Table IV.
func ExampleNetwork_PredictAttachment() {
	net, err := wirelesshart.Typical()
	if err != nil {
		log.Fatal(err)
	}
	alpha, err := net.PredictAttachment("n4", 7) // 2-hop existing path
	if err != nil {
		log.Fatal(err)
	}
	beta, err := net.PredictAttachment("n1", 6) // 1-hop existing path
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alpha: R=%.4f over %d hops\n", alpha.Reachability, alpha.Hops)
	fmt.Printf("beta:  R=%.4f over %d hops\n", beta.Reachability, beta.Hops)
	// Output:
	// alpha: R=0.9945 over 3 hops
	// beta:  R=0.9945 over 2 hops
}
