package wirelesshart

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestScaleLargeNetwork exercises the whole pipeline on a 60-device plant
// mesh with a long reporting interval: routing, scheduling, one DTMC per
// path, and the aggregate measures, all at a scale well beyond the paper's
// evaluation.
func TestScaleLargeNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow large-network integration test in -short mode")
	}
	rng := rand.New(rand.NewSource(2026))
	net := New()
	if err := net.Gateway("G"); err != nil {
		t.Fatal(err)
	}
	// Three tiers following the 30/50/20 rule, with randomized per-link
	// quality.
	var tier1, tier2 []string
	addDevice := func(name, parent string) {
		t.Helper()
		if err := net.Device(name); err != nil {
			t.Fatal(err)
		}
		avail := 0.75 + 0.2*rng.Float64()
		if err := net.Link(name, parent, Availability(avail)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 18; i++ {
		name := fmt.Sprintf("a%d", i)
		addDevice(name, "G")
		tier1 = append(tier1, name)
	}
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("b%d", i)
		addDevice(name, tier1[rng.Intn(len(tier1))])
		tier2 = append(tier2, name)
	}
	for i := 0; i < 12; i++ {
		addDevice(fmt.Sprintf("c%d", i), tier2[rng.Intn(len(tier2))])
	}

	rep, err := net.Analyze(ReportingInterval(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) != 60 {
		t.Fatalf("paths = %d, want 60", len(rep.Paths))
	}
	// 18*1 + 30*2 + 12*3 = 114 transmissions + 1 idle slot.
	if rep.Fup != 115 {
		t.Errorf("Fup = %d, want 115", rep.Fup)
	}
	for _, p := range rep.Paths {
		if p.Reachability <= 0.9 || p.Reachability > 1 {
			t.Errorf("path %s: R = %v out of expected range", p.Source, p.Reachability)
		}
		if p.Hops < 1 || p.Hops > 3 {
			t.Errorf("path %s: %d hops", p.Source, p.Hops)
		}
		if p.ExpectedDelayMS <= 0 {
			t.Errorf("path %s: E[tau] = %v", p.Source, p.ExpectedDelayMS)
		}
	}
	if rep.OverallMeanDelayMS <= 0 || rep.Utilization <= 0 {
		t.Error("aggregate measures missing")
	}

	// Multi-channel scheduling at scale: the frame must shrink toward
	// the gateway-reception bound (60 gateway receptions).
	mc, err := net.Analyze(ReportingInterval(8), Channels(4))
	if err != nil {
		t.Fatal(err)
	}
	if mc.Fup >= rep.Fup {
		t.Errorf("4-channel frame %d should beat single-channel %d", mc.Fup, rep.Fup)
	}
	if mc.Fup < 60 {
		t.Errorf("frame %d below the 60-reception gateway bound", mc.Fup)
	}

	// A modest simulation cross-check on the scaled network.
	sim, err := net.Simulate(400, 3, ReportingInterval(8))
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, sp := range sim.Paths {
		ap, ok := rep.PathBySource(sp.Source)
		if !ok {
			t.Fatalf("path %s missing", sp.Source)
		}
		if d := math.Abs(sp.Reachability - ap.Reachability); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Errorf("largest sim-vs-analytic gap %v at 400 intervals", worst)
	}
}

// TestEndToEndFailureRecoveryStory walks the paper's Section VI-C arc on
// the public API: healthy network -> random-duration failure (degraded) ->
// permanent failure (path dead) -> topology repair (re-routing through a
// backup relay) restores service.
func TestEndToEndFailureRecoveryStory(t *testing.T) {
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// build assembles gateway + relay/backup + sensor; withRelayLink
	// controls whether the (possibly failed) sensor-relay link exists.
	build := func(withRelayLink bool) *Network {
		t.Helper()
		n := New()
		must(n.Gateway("G"))
		for _, d := range []string{"relay", "sensor", "backup"} {
			must(n.Device(d))
		}
		must(n.Link("relay", "G", Availability(0.9)))
		must(n.Link("backup", "G", Availability(0.9)))
		if withRelayLink {
			must(n.Link("sensor", "relay", Availability(0.9)))
		} else {
			must(n.Link("sensor", "backup", Availability(0.9)))
		}
		return n
	}

	healthy, err := build(true).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	hs, _ := healthy.PathBySource("sensor")
	if hs.Reachability < 0.99 {
		t.Fatalf("healthy R = %v", hs.Reachability)
	}

	// Random-duration failure on the sensor's first hop: degraded but
	// alive (frequency hopping does not help; retransmissions do).
	degraded, err := build(true).Analyze(LinkDownDuring("sensor", "relay", 1, 6))
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := degraded.PathBySource("sensor")
	if !(ds.Reachability < hs.Reachability) || ds.Reachability == 0 {
		t.Errorf("random failure should degrade, not kill: %v vs %v",
			ds.Reachability, hs.Reachability)
	}

	// Permanent failure kills the path — "it can not be solved by the
	// current routing graph".
	dead, err := build(true).Analyze(LinkPermanentlyDown("sensor", "relay"))
	if err != nil {
		t.Fatal(err)
	}
	dd, _ := dead.PathBySource("sensor")
	if dd.Reachability != 0 {
		t.Errorf("permanent failure: R = %v, want 0", dd.Reachability)
	}

	// Topology repair: the failed link is removed from the routing graph
	// and the sensor attaches via the backup relay instead.
	recovered, err := build(false).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := recovered.PathBySource("sensor")
	if rs.Reachability < 0.99 {
		t.Errorf("recovered R = %v, want healthy again", rs.Reachability)
	}
	if len(rs.Route) != 3 || rs.Route[1] != "backup" {
		t.Errorf("recovered route = %v, want via backup", rs.Route)
	}
}
