package wirelesshart

// One benchmark per paper artifact: each bench regenerates the data behind
// the corresponding table or figure (see DESIGN.md's per-experiment index
// and EXPERIMENTS.md for paper-vs-measured values). Run with
//
//	go test -bench=. -benchmem
//
// The reported ns/op measures the full regeneration cost of each artifact.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"wirelesshart/internal/engine"
	"wirelesshart/internal/experiments"
	"wirelesshart/internal/spec"
)

func benchErr(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig4PathModelIs1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig4()
		benchErr(b, err)
	}
}

func BenchmarkFig5PathModelIs2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig5()
		benchErr(b, err)
	}
}

func BenchmarkFig6TransientGoal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig6()
		benchErr(b, err)
	}
}

func BenchmarkFig7DelayDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig7()
		benchErr(b, err)
	}
}

func BenchmarkFig8ReachabilityVsAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig8()
		benchErr(b, err)
	}
}

func BenchmarkFig9DelayVsAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig9()
		benchErr(b, err)
	}
}

func BenchmarkTable1AvailabilitySweep(b *testing.B) {
	// Table I shares Fig. 8's sweep and adds the expected delays.
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig8()
		benchErr(b, err)
	}
}

func BenchmarkFig10HopCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig10()
		benchErr(b, err)
	}
}

func BenchmarkFig13NetworkReachability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig13(experiments.Fig13Avails)
		benchErr(b, err)
	}
}

func BenchmarkFig14OverallDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig14()
		benchErr(b, err)
	}
}

func BenchmarkFig15ExpectedDelays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, err := experiments.ComputeFig15(false)
		benchErr(b, err)
	}
}

func BenchmarkTable2Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeTab2()
		benchErr(b, err)
	}
}

func BenchmarkFig16Scheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.ComputeFig15(false); err != nil {
			b.Fatal(err)
		}
		if _, _, err := experiments.ComputeFig15(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17LinkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig17()
		benchErr(b, err)
	}
}

func BenchmarkTable3RandomFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeTab3()
		benchErr(b, err)
	}
}

func BenchmarkFig18ReportingInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig18()
		benchErr(b, err)
	}
}

func BenchmarkFig19FastControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeFig19(experiments.Fig13Avails)
		benchErr(b, err)
	}
}

func BenchmarkTable4Prediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeTab4()
		benchErr(b, err)
	}
}

func BenchmarkXValDESvsAnalytic(b *testing.B) {
	// Scaled-down interval count so the bench finishes quickly; the
	// experiment runner uses 20000 intervals.
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeXVal(500, 101)
		benchErr(b, err)
	}
}

func BenchmarkCtrlLoopStability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeCtrl(500)
		benchErr(b, err)
	}
}

// Ablation benches for the design choices called out in DESIGN.md.

func BenchmarkAblationScheduleOptimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeOpt()
		benchErr(b, err)
	}
}

func BenchmarkAblationGilbertVsHopping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeHop(2000, 201)
		benchErr(b, err)
	}
}

func BenchmarkTTLSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeTTL()
		benchErr(b, err)
	}
}

func BenchmarkPlantNetworkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputePlant(10, 10, 424242)
		benchErr(b, err)
	}
}

func BenchmarkRoundTripDESvsAnalytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeRTrip(500, 606)
		benchErr(b, err)
	}
}

func BenchmarkInhomogeneousLinks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeInhomo(515151)
		benchErr(b, err)
	}
}

func BenchmarkMultiChannelSchedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComputeMultiChannel()
		benchErr(b, err)
	}
}

// BenchmarkPathModelScaling verifies the paper's O(Is*Fs*n) complexity
// claim empirically: solve cost grows linearly in the reporting interval.
func BenchmarkPathModelScaling(b *testing.B) {
	for _, is := range []int{1, 2, 4, 8, 16} {
		is := is
		b.Run(fmt.Sprintf("Is=%d", is), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := ExamplePath([]int{3, 6, 7}, 7, is, 0.75)
				benchErr(b, err)
			}
		})
	}
}

// Library-level micro-benchmarks: the cost of the core operations a
// downstream user calls.

func BenchmarkAnalyzeTypicalNetwork(b *testing.B) {
	n, err := Typical()
	benchErr(b, err)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := n.Analyze()
		benchErr(b, err)
	}
}

func BenchmarkSimulateTypicalNetwork1kIntervals(b *testing.B) {
	n, err := Typical()
	benchErr(b, err)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := n.Simulate(1000, int64(i))
		benchErr(b, err)
	}
}

func BenchmarkExamplePathSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := ExamplePath([]int{3, 6, 7}, 7, 4, 0.75)
		benchErr(b, err)
	}
}

func BenchmarkPredictAttachment(b *testing.B) {
	n, err := Typical()
	benchErr(b, err)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := n.PredictAttachment("n4", 7)
		benchErr(b, err)
	}
}

// Evaluation-engine benches: the cost of a cold DTMC solve versus a cache
// hit versus eight goroutines racing on the same scenario (single-flight).
// The cache-hit path must come in at least an order of magnitude under the
// cold solve.

func BenchmarkEngineColdSolve(b *testing.B) {
	ctx := context.Background()
	s := spec.TypicalSpec()
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Config{})
		_, err := eng.Evaluate(ctx, s)
		benchErr(b, err)
	}
}

func BenchmarkEngineCacheHit(b *testing.B) {
	ctx := context.Background()
	s := spec.TypicalSpec()
	eng := engine.New(engine.Config{})
	_, err := eng.Evaluate(ctx, s)
	benchErr(b, err)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := eng.Evaluate(ctx, s)
		benchErr(b, err)
	}
}

func BenchmarkEngineSingleFlight8(b *testing.B) {
	const goroutines = 8
	ctx := context.Background()
	s := spec.TypicalSpec()
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Config{})
		errs := make([]error, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				_, errs[g] = eng.Evaluate(ctx, s)
			}(g)
		}
		wg.Wait()
		for _, err := range errs {
			benchErr(b, err)
		}
		if solves := eng.Metrics().Solves(); solves != 1 {
			b.Fatalf("%d solves, want 1", solves)
		}
	}
}
