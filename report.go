package wirelesshart

import (
	"errors"
	"fmt"
	"sort"

	"wirelesshart/internal/core"
	"wirelesshart/internal/des"
	"wirelesshart/internal/link"
	"wirelesshart/internal/measures"
	"wirelesshart/internal/pathmodel"
	"wirelesshart/internal/schedule"
	"wirelesshart/internal/topology"
)

// DelayPoint is one support point of a delay distribution.
type DelayPoint struct {
	// MS is the delay in milliseconds.
	MS float64
	// Prob is the probability at this delay.
	Prob float64
}

// PathReport holds one uplink path's measures.
type PathReport struct {
	// Source is the source node name.
	Source string
	// Route is the node-name sequence to the gateway.
	Route []string
	// Hops is the path length.
	Hops int
	// Slots are the 1-based frame slots of the path's transmissions.
	Slots []int
	// Reachability is R, the in-interval delivery probability (Eq. 6).
	Reachability float64
	// CycleProbs[i] is the probability of arrival in cycle i+1.
	CycleProbs []float64
	// ExpectedDelayMS is E[tau] (Eq. 9); zero when Reachability is zero.
	ExpectedDelayMS float64
	// DelayDistribution is the normalized delay PMF (Eq. 8).
	DelayDistribution []DelayPoint
	// Utilization is the exact slot-usage fraction of this path.
	Utilization float64
	// ExpectedIntervalsToLoss is E[N] = 1/(1-R); +Inf-like large values
	// are capped by the zero value 0 meaning "no loss observed" when
	// R = 1.
	ExpectedIntervalsToLoss float64
	// LoopCompletion is the probability that the full control loop
	// (uplink + mirrored downlink) completes within the reporting
	// interval — the paper's Section V-A round-trip observation.
	LoopCompletion float64
	// LoopCycleProbs[k] is the probability the loop completes with k+1
	// total cycles.
	LoopCycleProbs []float64
	// DelayP95MS and DelayP99MS are delay percentiles over received
	// messages (zero when nothing is delivered).
	DelayP95MS, DelayP99MS float64
	// DelayStdDevMS is the delay jitter over received messages.
	DelayStdDevMS float64
}

// Report holds a network analysis.
type Report struct {
	// Paths are the per-source reports, sorted by source name.
	Paths []PathReport
	// Fup is the uplink frame size of the generated schedule.
	Fup int
	// Schedule is the schedule in the paper's eta notation.
	Schedule string
	// OverallMeanDelayMS is E[Gamma] (Eq. 13).
	OverallMeanDelayMS float64
	// OverallDelay is the network delay distribution (Fig. 14 style,
	// unnormalized: total mass is the mean reachability).
	OverallDelay []DelayPoint
	// Utilization is the exact network utilization (Eq. 11).
	Utilization float64
}

// PathBySource returns the report for one source name.
func (r *Report) PathBySource(name string) (PathReport, bool) {
	for _, p := range r.Paths {
		if p.Source == name {
			return p, true
		}
	}
	return PathReport{}, false
}

// Analyze builds the schedule, solves every path DTMC and returns the
// network report.
func (n *Network) Analyze(opts ...Option) (*Report, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(o); err != nil {
			return nil, err
		}
	}
	a, sched, err := n.build(o)
	if err != nil {
		return nil, err
	}
	na, err := a.Analyze()
	if err != nil {
		return nil, err
	}
	out := &Report{
		Fup:                sched.Fup(),
		Schedule:           sched.Format(n.topo),
		OverallMeanDelayMS: na.OverallMeanDelayMS,
		Utilization:        na.UtilizationExact,
	}
	for _, x := range na.OverallDelay.Support() {
		out.OverallDelay = append(out.OverallDelay, DelayPoint{MS: x, Prob: na.OverallDelay.Prob(x)})
	}
	for _, pa := range na.Paths {
		pr, err := n.pathReport(pa, sched)
		if err != nil {
			return nil, err
		}
		rt, err := a.AnalyzeRoundTrip(pa.Source)
		if err != nil {
			return nil, err
		}
		pr.LoopCompletion = rt.Completion
		pr.LoopCycleProbs = rt.CycleProbs
		out.Paths = append(out.Paths, pr)
	}
	sort.Slice(out.Paths, func(i, j int) bool { return out.Paths[i].Source < out.Paths[j].Source })
	return out, nil
}

func (n *Network) pathReport(pa *core.PathAnalysis, sched schedule.Plan) (PathReport, error) {
	srcNode, err := n.topo.Node(pa.Source)
	if err != nil {
		return PathReport{}, err
	}
	var route []string
	for _, id := range pa.Path.Nodes() {
		node, err := n.topo.Node(id)
		if err != nil {
			return PathReport{}, err
		}
		route = append(route, node.Name)
	}
	pr := PathReport{
		Source:          srcNode.Name,
		Route:           route,
		Hops:            pa.Path.Hops(),
		Slots:           sched.SlotsForSource(pa.Source),
		Reachability:    pa.Reachability,
		CycleProbs:      measures.CycleFunction(pa.Result),
		ExpectedDelayMS: pa.ExpectedDelayMS,
		Utilization:     pa.UtilizationExact,
	}
	if pa.DelayDist != nil {
		for _, x := range pa.DelayDist.Support() {
			pr.DelayDistribution = append(pr.DelayDistribution, DelayPoint{MS: x, Prob: pa.DelayDist.Prob(x)})
		}
		if q, err := pa.DelayDist.Quantile(0.95); err == nil {
			pr.DelayP95MS = q
		}
		if q, err := pa.DelayDist.Quantile(0.99); err == nil {
			pr.DelayP99MS = q
		}
		pr.DelayStdDevMS = pa.DelayDist.StdDev()
	}
	if pa.Reachability < 1 && pa.Reachability >= 0 {
		if e, err := measures.ExpectedIntervalsToFirstLoss(pa.Reachability); err == nil {
			pr.ExpectedIntervalsToLoss = e
		}
	}
	return pr, nil
}

// SimPathReport holds one path's simulated measures.
type SimPathReport struct {
	Source          string
	Hops            int
	Generated       int
	Delivered       int
	Lost            int
	Reachability    float64
	ReachabilityCI  float64
	ExpectedDelayMS float64
	CycleProbs      []float64
}

// SimReport holds a discrete-event simulation of the network.
type SimReport struct {
	Paths       []SimPathReport
	Intervals   int
	Utilization float64
}

// PathBySource returns the simulated report for one source name.
func (r *SimReport) PathBySource(name string) (SimPathReport, bool) {
	for _, p := range r.Paths {
		if p.Source == name {
			return p, true
		}
	}
	return SimPathReport{}, false
}

// Simulate runs the discrete-event simulator for the given number of
// reporting intervals with the given seed, under the same schedule and
// link parameters as Analyze. Failure-injection options (LinkDownDuring,
// LinkPermanentlyDown) are honored.
func (n *Network) Simulate(intervals int, seed int64, opts ...Option) (*SimReport, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(o); err != nil {
			return nil, err
		}
	}
	// Build the schedule the same way Analyze does (also validates).
	_, plan, err := n.build(o)
	if err != nil {
		return nil, err
	}
	sched, ok := plan.(schedule.ExecutablePlan)
	if !ok {
		return nil, errors.New("wirelesshart: schedule is not executable")
	}
	// Per-link processes with injections.
	procs := map[topology.LinkID]des.LinkProcess{}
	o2 := defaultOptions()
	for _, opt := range opts {
		if err := opt(o2); err != nil {
			return nil, err
		}
	}
	for _, l := range n.topo.Links() {
		na, err := n.topo.Node(l.A)
		if err != nil {
			return nil, err
		}
		nb, err := n.topo.Node(l.B)
		if err != nil {
			return nil, err
		}
		key := linkKey(na.Name, nb.Name)
		m := n.models[l.ID]
		var proc des.LinkProcess = des.NewGilbertSteady(m)
		if o2.deadLinks[key] {
			proc = &des.ForcedWindowProcess{Base: proc, From: 0, To: 1 << 30}
		} else if win, ok := o2.downLinks[key]; ok {
			proc = &des.ForcedWindowProcess{Base: proc, From: win[0], To: win[1]}
		}
		procs[l.ID] = proc
	}
	ttl := 0
	if o.ttl > 0 {
		ttl = o.ttl
	}
	fdown := o.fdown
	if fdown < 0 {
		fdown = -1
	}
	res, err := des.Run(des.Config{
		Net:       n.topo,
		Sched:     sched,
		Is:        o.is,
		TTL:       ttl,
		Fdown:     fdown,
		Intervals: intervals,
		Seed:      seed,
		Links:     procs,
	})
	if err != nil {
		return nil, err
	}
	out := &SimReport{Intervals: res.Intervals, Utilization: res.NetworkUtilization()}
	for _, p := range res.Paths {
		srcNode, err := n.topo.Node(p.Source)
		if err != nil {
			return nil, err
		}
		ci, _ := p.ReachabilityCI()
		out.Paths = append(out.Paths, SimPathReport{
			Source:          srcNode.Name,
			Hops:            p.Hops,
			Generated:       p.Generated,
			Delivered:       p.Delivered,
			Lost:            p.Lost,
			Reachability:    p.Reachability(),
			ReachabilityCI:  ci,
			ExpectedDelayMS: p.DelaySummary.Mean(),
			CycleProbs:      p.CycleProbs(),
		})
	}
	sort.Slice(out.Paths, func(i, j int) bool { return out.Paths[i].Source < out.Paths[j].Source })
	return out, nil
}

// LinkSuggestion ranks one link's improvement potential.
type LinkSuggestion struct {
	// A and B name the link's endpoints.
	A, B string
	// SharedBy counts the uplink paths traversing the link.
	SharedBy int
	// MeanReachabilityGain is the network mean-reachability improvement
	// if this link's availability rises by the probe delta.
	MeanReachabilityGain float64
	// WorstReachabilityGain is the bottleneck improvement.
	WorstReachabilityGain float64
}

// SuggestImprovements ranks the network's links by how much improving each
// one (raising its stationary availability by delta) would raise the mean
// per-path reachability — the paper's "routing suggestions" made concrete.
func (n *Network) SuggestImprovements(delta float64, opts ...Option) ([]LinkSuggestion, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(o); err != nil {
			return nil, err
		}
	}
	a, _, err := n.build(o)
	if err != nil {
		return nil, err
	}
	sens, err := a.SensitivityAnalysis(delta)
	if err != nil {
		return nil, err
	}
	out := make([]LinkSuggestion, 0, len(sens))
	for _, s := range sens {
		na, err := n.topo.Node(s.Link.A)
		if err != nil {
			return nil, err
		}
		nb, err := n.topo.Node(s.Link.B)
		if err != nil {
			return nil, err
		}
		out = append(out, LinkSuggestion{
			A:                     na.Name,
			B:                     nb.Name,
			SharedBy:              s.SharedBy,
			MeanReachabilityGain:  s.MeanGain,
			WorstReachabilityGain: s.WorstGain,
		})
	}
	return out, nil
}

// Prediction is the outcome of a composed-path routing prediction.
type Prediction struct {
	// Via is the attachment node.
	Via string
	// CycleProbs is the composed cycle probability function (Eq. 12).
	CycleProbs []float64
	// Reachability is the composed reachability.
	Reachability float64
	// Hops is the composed path length (peer hop + existing hops).
	Hops int
}

// BetterPrediction reports whether prediction a should rank above b under
// the paper's routing-choice rule (Section VI-E): higher reachability wins,
// and reachabilities within 0.05% of each other are tied and decided by the
// shorter composed path (each extra hop costs another ~10 ms slot).
func BetterPrediction(a, b *Prediction) bool {
	return measures.BetterComposed(a.Reachability, a.Hops, b.Reachability, b.Hops,
		measures.ComposedTieTolerance)
}

// RankPredictions returns the predictions ordered best-first by
// BetterPrediction; the input is not modified and ties keep their input
// order (stable).
func RankPredictions(preds []*Prediction) []*Prediction {
	out := append([]*Prediction(nil), preds...)
	sort.SliceStable(out, func(i, j int) bool { return BetterPrediction(out[i], out[j]) })
	return out
}

// PredictAttachment predicts the performance of a new node joining the
// network by a single peer link (with the given linear Eb/N0) to the named
// existing node, using the paper's composition rule (Section VI-E). The
// existing node must be a field device with a route to the gateway.
func (n *Network) PredictAttachment(via string, ebN0 float64, opts ...Option) (*Prediction, error) {
	return n.PredictMultiHopAttachment(via, []float64{ebN0}, opts...)
}

// PredictMultiHopAttachment generalizes PredictAttachment to a multi-hop
// peer path (paper Fig. 11): ebN0s[0] is the measured SNR of the hop
// leaving the new node, the last entry the hop arriving at the named
// existing node.
func (n *Network) PredictMultiHopAttachment(via string, ebN0s []float64, opts ...Option) (*Prediction, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(o); err != nil {
			return nil, err
		}
	}
	node, ok := n.topo.NodeByName(via)
	if !ok {
		return nil, fmt.Errorf("wirelesshart: unknown node %q", via)
	}
	a, _, err := n.build(o)
	if err != nil {
		return nil, err
	}
	peers := make([]link.Model, len(ebN0s))
	for i, e := range ebN0s {
		m, err := link.FromEbN0(e, n.bits, link.DefaultRecoveryProb)
		if err != nil {
			return nil, err
		}
		peers[i] = m
	}
	cycles, reach, err := a.PredictPeerComposition(node.ID, peers)
	if err != nil {
		return nil, err
	}
	routes := a.Routes()
	return &Prediction{
		Via:          via,
		CycleProbs:   cycles,
		Reachability: reach,
		Hops:         routes[node.ID].Hops() + len(peers),
	}, nil
}

// RequiredInterval returns the smallest reporting interval Is for which an
// n-hop homogeneous path at the given stationary availability reaches the
// target reachability, probing up to maxIs — the design-time inverse of
// the paper's fast-control trade-off (Section VI-D).
func RequiredInterval(hops int, avail, targetR float64, maxIs int) (int, error) {
	return measures.MinReportingInterval(hops, avail, targetR, maxIs)
}

// ExamplePath solves a standalone homogeneous path outside any network: n
// hops with the given per-hop stationary availability, transmission slots,
// frame size and reporting interval. It returns the cycle probabilities —
// the building block for custom studies.
func ExamplePath(slots []int, fup, is int, avail float64) ([]float64, error) {
	lm, err := link.FromAvailability(avail, link.DefaultRecoveryProb)
	if err != nil {
		return nil, err
	}
	links := make([]link.Availability, len(slots))
	for i := range links {
		links[i] = lm.Steady()
	}
	m, err := pathmodel.Build(pathmodel.Config{Slots: slots, Fup: fup, Is: is, Links: links})
	if err != nil {
		return nil, err
	}
	res, err := m.Solve()
	if err != nil {
		return nil, err
	}
	return res.CycleProbs, nil
}
