// Command whart-lint runs the repo's custom analyzer suite — layercheck,
// probfloat, mustcheck, exhaustenum, detrange, locksafe, goleak — over a
// set of package patterns and exits non-zero on any diagnostic or on any
// stale suppression directive.
//
// It lives in its own module (wirelesshart/tools/lint) so the model
// module's import graph stays dependency-free; run it from the repo root
// with
//
//	go -C tools/lint run ./cmd/whart-lint -dir ../.. ./...
//
// or just `make lint`. Findings can be silenced line-by-line with
//
//	//whartlint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it. A directive that silences
// nothing is itself reported (category "staleignore") and fails the run,
// so suppressions cannot outlive the finding they were written for.
//
// -format selects the report encoding: text (default, one finding per
// line), json (machine-readable summary), or sarif (SARIF 2.1.0 for
// GitHub code scanning).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wirelesshart/tools/lint/analysis"
	"wirelesshart/tools/lint/analysis/load"
	"wirelesshart/tools/lint/analysis/report"
	"wirelesshart/tools/lint/analysis/runner"
	"wirelesshart/tools/lint/detrange"
	"wirelesshart/tools/lint/exhaustenum"
	"wirelesshart/tools/lint/goleak"
	"wirelesshart/tools/lint/layercheck"
	"wirelesshart/tools/lint/locksafe"
	"wirelesshart/tools/lint/mustcheck"
	"wirelesshart/tools/lint/probfloat"
)

var all = []*analysis.Analyzer{
	detrange.Analyzer,
	exhaustenum.Analyzer,
	goleak.Analyzer,
	layercheck.Analyzer,
	locksafe.Analyzer,
	mustcheck.Analyzer,
	probfloat.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	dir := flag.String("dir", ".", "directory of the module to analyze (working directory for the go tool)")
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	format := flag.String("format", "text", "report format: text, json, or sarif")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: whart-lint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Println(a.Name)
		}
		return 0
	}

	skip := make(map[string]bool)
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			skip[name] = true
		}
	}
	var analyzers []*analysis.Analyzer
	for _, a := range all {
		if !skip[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(load.Config{Dir: *dir}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "whart-lint: %v\n", err)
		return 2
	}
	res, err := runner.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "whart-lint: %v\n", err)
		return 2
	}
	diags := report.Merge(res.Diagnostics, report.StaleDiagnostics(res.Stale(analyzers)))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whart-lint: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		err = report.Text(w, diags)
	case "json":
		err = report.JSON(w, diags, *dir)
	case "sarif":
		err = report.SARIF(w, diags, analyzers, *dir)
	default:
		fmt.Fprintf(os.Stderr, "whart-lint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "whart-lint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "whart-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
