package mustcheck_test

import (
	"testing"

	"wirelesshart/tools/lint/analysis/analysistest"
	"wirelesshart/tools/lint/mustcheck"
)

func TestMustcheck(t *testing.T) {
	analysistest.RunWithStubs(t, "testdata/src/whart", mustcheck.Analyzer, "./...")
}
