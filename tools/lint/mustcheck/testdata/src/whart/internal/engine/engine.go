// Stub of the real internal/engine snapshot surface mustcheck watches.
package engine

import "io"

// Engine is the evaluation engine stub.
type Engine struct{}

// SaveSnapshot mirrors the warm-cache serializer.
func (e *Engine) SaveSnapshot(w io.Writer) (int, error) {
	_ = w
	return 0, nil
}

// LoadSnapshot mirrors the validating warm-cache restore.
func (e *Engine) LoadSnapshot(r io.Reader) (int, error) {
	_ = r
	return 0, nil
}
