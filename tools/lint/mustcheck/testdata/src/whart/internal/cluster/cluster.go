// Stub of the real internal/cluster surface mustcheck watches.
package cluster

import "io"

// Member is one ring replica stub.
type Member struct {
	ID, URL string
}

// Ring is the consistent-hash ring stub.
type Ring struct{}

// NewRing mirrors the validating ring constructor.
func NewRing(selfID string, members []Member, vnodes int) (*Ring, error) {
	_, _, _ = selfID, members, vnodes
	return &Ring{}, nil
}

// SnapshotEntry is one cached result stub.
type SnapshotEntry struct {
	Key   string
	Value []byte
}

// WriteSnapshot mirrors the snapshot encoder.
func WriteSnapshot(w io.Writer, entries []SnapshotEntry) error {
	_, _ = w, entries
	return nil
}

// ReadSnapshot mirrors the validating snapshot decoder.
func ReadSnapshot(r io.Reader) ([]SnapshotEntry, error) {
	_ = r
	return nil, nil
}
