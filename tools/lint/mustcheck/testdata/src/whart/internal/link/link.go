// Stub of the real internal/link fading surface mustcheck watches.
package link

// KState is the k-state fading model stub.
type KState struct{}

// NewKState mirrors the explicit-matrix constructor.
func NewKState(trans [][]float64, succ []float64) (*KState, error) {
	_, _ = trans, succ
	return &KState{}, nil
}

// NewUniformMixing mirrors the uniform-mixing constructor.
func NewUniformMixing(stay float64, succ []float64) (*KState, error) {
	_, _ = stay, succ
	return &KState{}, nil
}

// MarginalFrom mirrors the transient-marginal accessor.
func (k *KState) MarginalFrom(dist []float64) (func(int) float64, error) {
	_ = dist
	return nil, nil
}
