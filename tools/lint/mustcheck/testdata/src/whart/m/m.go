package m

import (
	"wirelesshart/internal/cluster"
	"wirelesshart/internal/dtmc"
	"wirelesshart/internal/engine"
	"wirelesshart/internal/link"
	"wirelesshart/internal/pathmodel"
)

func bad() {
	c := dtmc.New()
	c.Validate(1e-9)           // want `result of Validate discarded; it must be checked`
	c.AddTransition(0, 1, 0.5) // want `result of AddTransition discarded; it must be checked`
	c.Compile()                // want `result of Compile discarded; it must be checked`

	k := dtmc.New().Compile()
	k.Rebind(nil, 1e-9)        // want `result of Rebind discarded; it must be checked`
	_, _ = k.Rebind(nil, 1e-9) // want `error result of Rebind assigned to blank identifier`

	var st pathmodel.Structure
	mdl, _ := st.Bind(nil) // want `error result of Bind assigned to blank identifier`
	_ = mdl

	k.TransientBatch(nil, nil, 0, 10)              // want `result of TransientBatch discarded; it must be checked`
	k.TransientBatchObserved(nil, nil, 0, 10, nil) // want `result of TransientBatchObserved discarded; it must be checked`
	st.BindBatch(nil)                              // want `result of BindBatch discarded; it must be checked`
	pathmodel.SolveBatch(nil)                      // want `result of SolveBatch discarded; it must be checked`
	models, _ := st.BindBatch(nil)                 // want `error result of BindBatch assigned to blank identifier`
	results, _ := pathmodel.SolveBatch(models)     // want `error result of SolveBatch assigned to blank identifier`
	_ = results

	link.NewKState(nil, nil)          // want `result of NewKState discarded; it must be checked`
	link.NewUniformMixing(0.9, nil)   // want `result of NewUniformMixing discarded; it must be checked`
	ks, _ := link.NewKState(nil, nil) // want `error result of NewKState assigned to blank identifier`
	ks.MarginalFrom(nil)              // want `result of MarginalFrom discarded; it must be checked`

	cluster.NewRing("a", nil, 0)            // want `result of NewRing discarded; it must be checked`
	ring, _ := cluster.NewRing("a", nil, 0) // want `error result of NewRing assigned to blank identifier`
	_ = ring
	cluster.WriteSnapshot(nil, nil) // want `result of WriteSnapshot discarded; it must be checked`
	cluster.ReadSnapshot(nil)       // want `result of ReadSnapshot discarded; it must be checked`
	var eng engine.Engine
	eng.SaveSnapshot(nil)        // want `result of SaveSnapshot discarded; it must be checked`
	eng.LoadSnapshot(nil)        // want `result of LoadSnapshot discarded; it must be checked`
	_, _ = eng.LoadSnapshot(nil) // want `error result of LoadSnapshot assigned to blank identifier`

	go c.Validate(1e-9)    // want `result of Validate discarded by go statement`
	defer c.Validate(1e-9) // want `result of Validate discarded by defer statement`
}

func badDistributed(eng *engine.Engine, cl *cluster.Client, peer cluster.Member) {
	eng.Evaluate(nil, nil)                       // want `result of Evaluate discarded; it must be checked`
	eng.EvaluatePeer(nil, nil)                   // want `result of EvaluatePeer discarded; it must be checked`
	eng.EvaluateBatch(nil, nil)                  // want `result of EvaluateBatch discarded; it must be checked`
	cl.Post(nil, peer, "/evaluate", nil)         // want `result of Post discarded; it must be checked`
	res, _ := eng.Evaluate(nil, nil)             // want `error result of Evaluate assigned to blank identifier`
	_ = res
	body, _ := cl.Post(nil, peer, "/evaluate", nil) // want `error result of Post assigned to blank identifier`
	_ = body
}

func goodDistributed(eng *engine.Engine, cl *cluster.Client, peer cluster.Member) error {
	res, err := eng.Evaluate(nil, nil)
	if err != nil {
		return err
	}
	_ = res
	batch, err := eng.EvaluateBatch(nil, nil)
	if err != nil {
		return err
	}
	_ = batch
	body, err := cl.Post(nil, peer, "/evaluate", nil)
	_ = body
	return err
}

func good() error {
	c := dtmc.New()
	if err := c.AddTransition(0, 1, 0.5); err != nil {
		return err
	}
	if err := c.Validate(1e-9); err != nil {
		return err
	}
	k, err := c.Compile().Rebind(nil, 1e-9)
	if err != nil {
		return err
	}
	_ = k
	var st pathmodel.Structure
	mdl, err := st.Bind(nil)
	_ = mdl
	return err
}
