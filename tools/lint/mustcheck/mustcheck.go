// Package mustcheck is errcheck scoped to the APIs whose discarded
// results corrupt shared state instead of merely losing information. A
// dropped error from Kernel.Rebind or Structure.Bind means a caller keeps
// using a kernel whose rows were never revalidated; a dropped
// Chain.Validate error defeats the only stochasticity check a chain gets;
// a Compile() whose result is thrown away silently populates the chain's
// kernel cache. Generic errcheck would flag every fmt.Fprintf in the
// repo; this pass watches exactly the solver-critical surface.
package mustcheck

import (
	"go/ast"
	"go/types"

	"wirelesshart/tools/lint/analysis"
)

// Analyzer is the mustcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "mustcheck",
	Doc: "require callers to use the results of the solver-critical APIs " +
		"(Kernel.Rebind, Structure.Bind, Chain.Validate, Chain.AddTransition*, " +
		"Chain.Compile, CSR.WithValues): a dropped error there poisons cached kernels",
	Run: run,
}

// checked is the set of functions (by types.Func.FullName) whose results
// must not be discarded. Extend it when a new cache-poisoning API appears.
var checked = map[string]bool{
	"(*wirelesshart/internal/dtmc.Kernel).Rebind":         true,
	"(*wirelesshart/internal/dtmc.Chain).Validate":        true,
	"(*wirelesshart/internal/dtmc.Chain).AddTransition":   true,
	"(*wirelesshart/internal/dtmc.Chain).AddTransitionFn": true,
	"(*wirelesshart/internal/dtmc.Chain).Compile":         true,
	"(*wirelesshart/internal/pathmodel.Structure).Bind":   true,
	"(*wirelesshart/internal/linalg.CSR).WithValues":      true,
	"wirelesshart/internal/linalg.NewCSR":                 true,
	"wirelesshart/internal/link.New":                      true,

	// Batched solver surface: every entry point returns an error whose
	// loss silently corrupts a whole batch of scenarios at once.
	"(*wirelesshart/internal/dtmc.Kernel).TransientBatch":         true,
	"(*wirelesshart/internal/dtmc.Kernel).TransientBatchObserved": true,
	"(*wirelesshart/internal/pathmodel.Structure).BindBatch":      true,
	"wirelesshart/internal/pathmodel.SolveBatch":                  true,
	"(*wirelesshart/internal/linalg.CSR).MulVecBatch":             true,
	"(*wirelesshart/internal/linalg.CSR).MulVecBatchMasked":       true,

	// Fading-link surface: every constructor validates stochasticity
	// (row sums, probability ranges, unique stationary distribution);
	// a dropped error hands the solver an invalid chain.
	"wirelesshart/internal/link.NewKState":                       true,
	"wirelesshart/internal/link.FromModel":                       true,
	"wirelesshart/internal/link.NewUniformMixing":                true,
	"wirelesshart/internal/link.FromSNRTrace":                    true,
	"(*wirelesshart/internal/link.KState).MarginalFrom":          true,
	"(*wirelesshart/internal/link.KState).StartingIn":            true,
	"wirelesshart/internal/channel.PartitionSNRTrace":            true,
	"(*wirelesshart/internal/spec.Spec).ResolveLinkProcess":      true,
	"(*wirelesshart/internal/pathmodel.Structure).BindProcesses": true,

	// Cluster surface: a dropped NewRing error leaves a replica routing on
	// a nil or half-validated ring, and a dropped snapshot error either
	// loses the warm cache (save) or hides a rejected restore (load).
	"wirelesshart/internal/cluster.NewRing":               true,
	"wirelesshart/internal/cluster.WriteSnapshot":         true,
	"wirelesshart/internal/cluster.ReadSnapshot":          true,
	"(*wirelesshart/internal/engine.Engine).SaveSnapshot": true,
	"(*wirelesshart/internal/engine.Engine).LoadSnapshot": true,

	// PR 9 distributed surface: a dropped Post error silently turns a
	// peer-forwarded evaluation into a missing result, and a dropped
	// Evaluate* error serves a stale or zero Result to the caller — the
	// SIGTERM drain path discards in-flight work with no trace.
	"(*wirelesshart/internal/cluster.Client).Post":         true,
	"(*wirelesshart/internal/engine.Engine).Evaluate":      true,
	"(*wirelesshart/internal/engine.Engine).EvaluatePeer":  true,
	"(*wirelesshart/internal/engine.Engine).EvaluateBatch": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if fn := watched(pass, call); fn != nil {
						pass.Reportf(call.Pos(), "result of %s discarded; it must be checked", fn.Name())
					}
				}
			case *ast.GoStmt:
				if fn := watched(pass, n.Call); fn != nil {
					pass.Reportf(n.Call.Pos(), "result of %s discarded by go statement; it must be checked", fn.Name())
				}
			case *ast.DeferStmt:
				if fn := watched(pass, n.Call); fn != nil {
					pass.Reportf(n.Call.Pos(), "result of %s discarded by defer statement; it must be checked", fn.Name())
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags `x, _ := k.Rebind(...)`-style assignments that blank
// out the error result of a watched call.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := watched(pass, call)
	if fn == nil {
		return
	}
	results := fn.Type().(*types.Signature).Results()
	if len(as.Lhs) != results.Len() {
		return // single-value context mismatches are a compile error anyway
	}
	for i := 0; i < results.Len(); i++ {
		if !isErrorType(results.At(i).Type()) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(as.Lhs[i].Pos(), "error result of %s assigned to blank identifier; it must be checked", fn.Name())
		}
	}
}

// watched resolves call's static callee and returns it when it is in the
// checked set.
func watched(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || !checked[fn.FullName()] {
		return nil
	}
	return fn
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
