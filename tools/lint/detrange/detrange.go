// Package detrange defines an analyzer that flags iteration-order
// dependence on Go's randomized map range.
//
// The model pipeline promises byte-identical outputs for identical
// inputs (fleet goldens diff two runs of the same seed), and the PR 6
// root cause was exactly a `for k := range m` whose body summed floats:
// float addition is not associative, so the randomized key order leaked
// into the last bits of the result. detrange makes that bug class
// unrepresentable by flagging any range over a map whose body has an
// order-sensitive effect:
//
//   - accumulating floats into a variable declared outside the loop
//     (+=, -=, *=, /=, or the spelled-out x = x + v forms);
//   - concatenating strings into an outer variable (cache keys built in
//     map order differ between runs);
//   - appending to an outer slice, unless a sort of that same slice is
//     control-flow-reachable after the loop (the collect-then-sort idiom
//     is the sanctioned fix and stays silent);
//   - feeding a hashing, checksum, or encoding sink: any call into
//     crypto/*, hash/*, or encoding/*, or a Write* method on a receiver
//     declared outside the loop (bytes.Buffer, strings.Builder,
//     hash.Hash, io.Writer — the write order IS the key order).
//
// Map writes, counters of integer type, and per-key work with no outer
// accumulation are order-independent and stay silent.
package detrange

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wirelesshart/tools/lint/analysis"
	"wirelesshart/tools/lint/analysis/cfa"
)

// Analyzer flags order-sensitive effects inside range-over-map loops.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flags map iteration whose body depends on the randomized key order",
	Run:  run,
}

// sortFuncs are the stdlib entry points that establish a deterministic
// order for the collect-then-sort exemption. Values are the index of the
// argument being sorted.
var sortFuncs = map[string]int{
	"sort.Strings":          0,
	"sort.Ints":             0,
	"sort.Float64s":         0,
	"sort.Slice":            0,
	"sort.SliceStable":      0,
	"sort.Sort":             0,
	"sort.Stable":           0,
	"slices.Sort":           0,
	"slices.SortFunc":       0,
	"slices.SortStableFunc": 0,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
			for _, lit := range cfa.Literals(fn.Body) {
				checkFunc(pass, lit.Body)
			}
		}
	}
	return nil
}

// checkFunc examines one function body (FuncLits are visited separately,
// each with its own graph, matching the cfa per-function contract).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var graph *cfa.Graph // built lazily: only append findings need it
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
			return true
		}
		checkLoop(pass, body, rng, &graph)
		return true
	})
}

func checkLoop(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, graph **cfa.Graph) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			checkAssign(pass, funcBody, rng, n, graph)
		case *ast.CallExpr:
			checkSink(pass, rng, n)
		}
		return true
	})
}

// checkAssign flags outer-variable accumulation and unsorted appends.
func checkAssign(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt, graph **cfa.Graph) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	obj := rootObject(pass, as.Lhs[0])
	if obj == nil || !outer(obj, rng) {
		return
	}
	lhs := render(as.Lhs[0])

	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		reportAccumulation(pass, rng, as, lhs)
		return
	case token.ASSIGN, token.DEFINE:
	default:
		return
	}

	// x = x <op> v spelled out, or x = append(x, ...).
	switch rhs := as.Rhs[0].(type) {
	case *ast.BinaryExpr:
		if !sameTarget(pass, as.Lhs[0], rhs.X) && !sameTarget(pass, as.Lhs[0], rhs.Y) {
			return
		}
		switch rhs.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			reportAccumulation(pass, rng, as, lhs)
		}
	case *ast.CallExpr:
		if id, ok := rhs.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return
		}
		if len(rhs.Args) == 0 || !sameTarget(pass, as.Lhs[0], rhs.Args[0]) {
			return
		}
		if sortedAfter(pass, funcBody, rng, obj, graph) {
			return
		}
		pass.Reportf(as.Pos(),
			"append to %q inside range over map %s depends on the randomized key order; sort %q after the loop or range over sorted keys",
			lhs, render(rng.X), lhs)
	}
}

// reportAccumulation flags float and string accumulation; integer and
// other exact accumulation commutes, so it stays silent.
func reportAccumulation(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt, lhs string) {
	t := pass.TypesInfo.TypeOf(as.Lhs[0])
	if t == nil {
		return
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return
	}
	switch {
	case basic.Info()&types.IsFloat != 0:
		pass.Reportf(as.Pos(),
			"float accumulation into %q inside range over map %s is not associative and depends on the randomized key order; range over sorted keys",
			lhs, render(rng.X))
	case basic.Info()&types.IsString != 0:
		pass.Reportf(as.Pos(),
			"string concatenation into %q inside range over map %s depends on the randomized key order; range over sorted keys",
			lhs, render(rng.X))
	}
}

// checkSink flags calls that fold the iteration order into a digest or
// encoded stream: anything under crypto/, hash/, or encoding/, and the
// Write* methods of outer bytes.Buffer / strings.Builder values.
func checkSink(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path == "hash" || strings.HasPrefix(path, "hash/") ||
		strings.HasPrefix(path, "crypto/") ||
		strings.HasPrefix(path, "encoding/") {
		pass.Reportf(call.Pos(),
			"call to %s.%s inside range over map %s feeds the randomized key order into a digest or encoding; range over sorted keys",
			path, fn.Name(), render(rng.X))
		return
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !strings.HasPrefix(fn.Name(), "Write") {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := rootObject(pass, sel.X)
	if obj == nil || !outer(obj, rng) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s on %q inside range over map %s records the randomized key order; range over sorted keys",
		fn.Name(), render(sel.X), render(rng.X))
}

// sortedAfter reports whether a sort of obj is control-flow-reachable
// after the loop — the sanctioned collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object, graph **cfa.Graph) bool {
	var calls []*ast.CallExpr
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		fn := callee(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		argIdx, ok := sortFuncs[fn.Pkg().Path()+"."+fn.Name()]
		if !ok || len(call.Args) <= argIdx {
			return true
		}
		if arg := rootObject(pass, call.Args[argIdx]); arg == obj {
			calls = append(calls, call)
		}
		return true
	})
	if len(calls) == 0 {
		return false
	}
	if *graph == nil {
		*graph = cfa.New(funcBody)
	}
	g := *graph
	from := g.BlockOf(rng)
	if from == nil {
		return true // range outside graph atoms: be lenient
	}
	for _, call := range calls {
		if to := g.BlockOf(nearestStmt(funcBody, call)); to != nil && g.Reachable(from, to) {
			return true
		}
	}
	return false
}

// nearestStmt finds the statement enclosing n, the granularity cfa
// tracks in Graph.BlockOf.
func nearestStmt(body *ast.BlockStmt, n ast.Node) ast.Node {
	var best ast.Node
	ast.Inspect(body, func(cand ast.Node) bool {
		if cand == nil || cand.Pos() > n.Pos() || cand.End() < n.End() {
			return false
		}
		if _, ok := cand.(ast.Stmt); ok {
			best = cand
		}
		return true
	})
	return best
}

// outer reports whether obj is declared outside the loop body, i.e.
// survives the iteration and can observe its order.
func outer(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Body.Pos() || obj.Pos() > rng.Body.End()
}

// rootObject resolves the base identifier of x, s.f, a[i], *p chains.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sameTarget reports whether two expressions name the same lvalue path
// (same root object and same rendered selector chain).
func sameTarget(pass *analysis.Pass, a, b ast.Expr) bool {
	oa, ob := rootObject(pass, a), rootObject(pass, b)
	return oa != nil && oa == ob && render(a) == render(b)
}

// render prints a compact source-like form of simple expressions for
// diagnostics and path comparison.
func render(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return render(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return render(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + render(x.X)
	case *ast.ParenExpr:
		return "(" + render(x.X) + ")"
	case *ast.CallExpr:
		return render(x.Fun) + "(...)"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// callee resolves the static *types.Func a call dispatches to, or nil.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}
