package detrange_test

import (
	"testing"

	"wirelesshart/tools/lint/analysis/analysistest"
	"wirelesshart/tools/lint/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.RunWithStubs(t, "testdata/src/whart", detrange.Analyzer, "./...")
}
