package d

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

func floatAccumulation(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into "sum" inside range over map m`
	}
	prod := 1.0
	for _, v := range m {
		prod = prod * v // want `float accumulation into "prod" inside range over map m`
	}
	return sum + prod
}

func stringKeyBuild(m map[string]int) string {
	key := ""
	for k := range m {
		key += k // want `string concatenation into "key" inside range over map m`
	}
	return key
}

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map m`
	}
	return keys
}

func appendSortedOnlyOnErrorPath(m map[string]int, fail bool) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted on every path that returns them
	}
	if fail {
		return nil
	}
	sort.Strings(keys)
	return keys
}

func hashSink(m map[string]string) map[string][32]byte {
	out := make(map[string][32]byte, len(m))
	for k, v := range m {
		out[k] = sha256.Sum256([]byte(v)) // want `call to crypto/sha256.Sum256 inside range over map m`
	}
	return out
}

func hashAccumulate(m map[string]int) []byte {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(fmt.Sprint(k))) // want `Write on "h" inside range over map m`
	}
	return h.Sum(nil)
}

func encodeSink(m map[string]int) {
	for k, v := range m {
		json.Marshal(struct { // want `call to encoding/json.Marshal inside range over map m`
			K string
			V int
		}{k, v})
	}
}

func bufferSink(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString on "b" inside range over map m`
	}
	var raw bytes.Buffer
	for k := range m {
		raw.Write([]byte(k)) // want `Write on "raw" inside range over map m`
	}
	return b.String() + raw.String()
}

// --- negatives ---

func sortedKeysIdiom(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort: the sanctioned fix
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k] // range over a slice, not a map
	}
	return sum
}

func sliceSortIdiom(m map[string]float64) []float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func intCounting(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer addition commutes: order-independent
	}
	for _, v := range m {
		n = n + v // spelled-out form, still integer: order-independent
	}
	return n
}

func mapRewrite(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2 // map writes are order-independent
	}
	return out
}

func innerAccumulator(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		var sum float64 // declared inside the loop: per-key, order-free
		for _, v := range vs {
			sum += v
		}
		out[k] = sum
	}
	return out
}

func maxScan(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v // plain assignment, not accumulation: max commutes
		}
	}
	return best
}

func innerWriter(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var b strings.Builder // declared inside the loop: per-key, order-free
		b.WriteString(v)
		b.WriteString("!")
		out[k] = b.String()
	}
	return out
}

func sliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v // slice iteration order is deterministic
	}
	return sum
}

func deferredWork(m map[string]int) []func() string {
	var fns []func() string
	for k := range m {
		k := k
		fns = append(fns, func() string { // want `append to "fns" inside range over map m`
			return fmt.Sprintf("%s", k)
		})
	}
	return fns
}
