package probfloat_test

import (
	"testing"

	"wirelesshart/tools/lint/analysis/analysistest"
	"wirelesshart/tools/lint/probfloat"
)

func TestProbfloat(t *testing.T) {
	analysistest.RunWithStubs(t, "testdata/src/whart", probfloat.Analyzer, "./...")
}
