// Stub of the internal/stats surface probfloat watches.
package stats

// Percentile mirrors the real quantile-level parameter.
func Percentile(sample []float64, q float64) (float64, error) {
	_ = q
	if len(sample) == 0 {
		return 0, nil
	}
	return sample[0], nil
}
