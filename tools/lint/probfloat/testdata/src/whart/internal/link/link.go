// Stub of the real internal/link surface probfloat watches; the analyzer
// matches by types.Func.FullName, so the module path and signatures must
// mirror the real package.
package link

// Availability mirrors the real package's per-slot up-probability.
type Availability func(int) float64

// Model is the two-state link model stub.
type Model struct{}

// New mirrors link.New(pfl, prc).
func New(pfl, prc float64) (Model, error) {
	_, _ = pfl, prc
	return Model{}, nil
}

// GeometricDownCycles mirrors the real stay-probability parameter.
func (m Model) GeometricDownCycles(stay float64, cycleSlots, maxCycles int, base Availability) (Availability, error) {
	_, _, _ = stay, cycleSlots, maxCycles
	return base, nil
}

// TransientUp mirrors the real u0 parameter.
func (m Model) TransientUp(u0 float64, t int) float64 {
	_ = t
	return u0
}

// KState is the k-state fading model stub.
type KState struct{}

// NewUniformMixing mirrors the real stay-probability parameter.
func NewUniformMixing(stay float64, succ []float64) (*KState, error) {
	_, _ = stay, succ
	return &KState{}, nil
}

// FromAvailability mirrors the real availability/recovery parameters.
func FromAvailability(availability, prc float64) (Model, error) {
	_, _ = availability, prc
	return Model{}, nil
}
