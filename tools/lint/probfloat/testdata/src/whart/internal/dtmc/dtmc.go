// Stub of the real internal/dtmc surface probfloat watches.
package dtmc

// Chain is the DTMC builder stub.
type Chain struct{}

// New returns an empty chain.
func New() *Chain { return &Chain{} }

// AddTransition mirrors the real edge-probability parameter p.
func (c *Chain) AddTransition(from, to int, p float64) error {
	_, _, _ = from, to, p
	return nil
}
