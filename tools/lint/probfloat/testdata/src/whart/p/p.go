package p

import (
	"wirelesshart/internal/dtmc"
	"wirelesshart/internal/link"
	"wirelesshart/internal/stats"
)

func equality(a, b float64, xs []float64) int {
	if a == b { // want `floating-point == comparison`
		return 1
	}
	if a != b { // want `floating-point != comparison`
		return 2
	}
	if a == 0 { // exact sparsity test: allowed
		return 3
	}
	if 0 != b { // allowed in either operand order
		return 4
	}
	if xs[0] == 0.0 { // a float literal zero is still exactly zero
		return 5
	}
	if a == 0.5 { // want `floating-point == comparison`
		return 6
	}
	const half, quarter = 0.5, 0.25
	if half == quarter { // both constant: folded at compile time
		return 7
	}
	//whartlint:ignore probfloat demonstration of the suppression protocol
	if a == b {
		return 8
	}
	if len(xs) == 0 { // integer comparison: not probfloat's business
		return 9
	}
	return 0
}

func ranges() {
	_, _ = link.New(1.5, 0.9)  // want `probability argument 1.5 to New is outside \[0,1\]`
	_, _ = link.New(0.3, -0.2) // want `probability argument .* to New is outside \[0,1\]`
	_, _ = link.New(0, 1)      // boundary values are fine

	c := dtmc.New()
	_ = c.AddTransition(0, 1, 2)   // want `probability argument 2 to AddTransition is outside \[0,1\]`
	_ = c.AddTransition(0, 1, 0.7) // in range

	var m link.Model
	_, _ = m.GeometricDownCycles(1.25, 1, 1, nil) // want `probability argument 1.25 to GeometricDownCycles is outside \[0,1\]`
	_ = m.TransientUp(-0.5, 3)                    // want `probability argument .* to TransientUp is outside \[0,1\]`

	p := 1.5 // non-constant arguments are runtime validation's job
	_, _ = link.New(p, 0.9)

	_, _ = stats.Percentile(nil, 1.1) // want `probability argument 1.1 to Percentile is outside \[0,1\]`
	_, _ = stats.Percentile(nil, 0.9) // in range

	_, _ = link.NewUniformMixing(1.5, nil)  // want `probability argument 1.5 to NewUniformMixing is outside \[0,1\]`
	_, _ = link.NewUniformMixing(0.9, nil)  // in range
	_, _ = link.FromAvailability(-0.1, 0.9) // want `probability argument .* to FromAvailability is outside \[0,1\]`
	_, _ = link.FromAvailability(0.8, 0.9)  // in range
}
