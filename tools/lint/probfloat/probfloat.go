// Package probfloat guards the model's probability arithmetic at the
// source level with two rules.
//
// Rule 1 — no raw floating-point equality. Probabilities and
// availabilities are accumulated through products and convolutions, so
// `p == q` on computed values is almost always a latent bug; the paper's
// measures are all defined up to a numeric tolerance. Comparisons where
// either side is the untyped constant 0 are allowed: exact-zero tests are
// the established sparsity idiom of the linalg hot paths (a value that was
// never written is exactly 0.0), and both-constant comparisons fold at
// compile time.
//
// Rule 2 — constant probability arguments must lie in [0,1]. Calls whose
// parameters are documented probabilities (link.New's p_fl/p_rc,
// Chain.AddTransition's edge probability, GeometricDownCycles' stay
// probability, ...) are checked whenever the argument is a compile-time
// constant; 1.5 in a PRc position becomes a diagnostic instead of a
// runtime validation error three layers later.
package probfloat

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"wirelesshart/tools/lint/analysis"
)

// Analyzer is the probfloat pass.
var Analyzer = &analysis.Analyzer{
	Name: "probfloat",
	Doc: "flag ==/!= between floating-point expressions (compare with a tolerance instead) " +
		"and constant probability arguments outside [0,1] in known probability parameters",
	Run: run,
}

// probArgs maps a function's types.Func.FullName to the indices of its
// probability-valued parameters. Extend this table when a new API grows a
// probability parameter.
var probArgs = map[string][]int{
	"wirelesshart/internal/link.New":                         {0, 1}, // pfl, prc
	"(*wirelesshart/internal/dtmc.Chain).AddTransition":      {2},    // p
	"(wirelesshart/internal/link.Model).GeometricDownCycles": {0},    // stay
	"(wirelesshart/internal/link.Model).TransientUp":         {0},    // u0 (initial up-probability)
	"wirelesshart/internal/channel.BERFromFailureProb":       {0},    // pfl
	"wirelesshart/internal/stats.GeometricPMF":               {0},    // p
	"wirelesshart/internal/stats.GeometricMean":              {0},    // p
	"wirelesshart/internal/stats.NegBinomialCycles":          {1},    // ps
	"wirelesshart/internal/stats.NegBinomialReachability":    {1},    // ps
	"(*wirelesshart/internal/stats.PMF).Quantile":            {0},    // level
	"wirelesshart/internal/stats.Percentile":                 {1},    // q (quantile level)
	"wirelesshart/internal/link.NewUniformMixing":            {0},    // stay
	"wirelesshart/internal/link.FromAvailability":            {0, 1}, // availability, prc
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkEquality(pass, n)
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkEquality(pass *analysis.Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	xt, xok := pass.TypesInfo.Types[e.X]
	yt, yok := pass.TypesInfo.Types[e.Y]
	if !xok || !yok || !isFloat(xt.Type) || !isFloat(yt.Type) {
		return
	}
	// Both constant: folded at compile time, nothing can drift.
	if xt.Value != nil && yt.Value != nil {
		return
	}
	// Exact-zero comparison: the sparsity/sentinel idiom.
	if isConstZero(xt) || isConstZero(yt) {
		return
	}
	pass.Reportf(e.OpPos, "floating-point %s comparison on probability-carrying values; compare against a tolerance (only == 0 sparsity tests are exact)", e.Op)
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstZero(tv types.TypeAndValue) bool {
	if tv.Value == nil || tv.Value.Kind() == constant.Unknown {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	idxs, ok := probArgs[fn.FullName()]
	if !ok {
		return
	}
	for _, i := range idxs {
		if i >= len(call.Args) {
			continue
		}
		arg := call.Args[i]
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Value == nil {
			continue
		}
		v := constant.ToFloat(tv.Value)
		if v.Kind() != constant.Float {
			continue
		}
		f, _ := constant.Float64Val(v)
		if f < 0 || f > 1 {
			pass.Reportf(arg.Pos(), "probability argument %v to %s is outside [0,1]", tv.Value, fn.Name())
		}
	}
}

// calleeFunc resolves the static callee of a call, or nil for indirect
// calls, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
