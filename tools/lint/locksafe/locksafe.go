// Package locksafe defines an analyzer for two mutex-discipline bugs the
// engine/cluster/fleet layers are exposed to:
//
//  1. A sync.Mutex or sync.RWMutex held across a blocking operation —
//     a channel send or receive, a select with no default, a call into
//     net/http, time.Sleep, or sync.WaitGroup.Wait. The engine's
//     worker-pool semaphore and the cluster client's peer forwarding
//     both block for unbounded time; holding a cache or breaker lock
//     through them serializes the whole process and can deadlock it.
//     The check is a must-hold dataflow over the intra-procedural CFG:
//     a blocking operation is flagged only if a lock is held on EVERY
//     path reaching it, so conditionally-locked code does not
//     false-positive. sync.Cond.Wait is special: it unlocks its own
//     mutex while waiting, so it is flagged only when a second lock is
//     also held.
//
//  2. A lock copied by value: a parameter, receiver, or assignment
//     whose type is or contains sync.Mutex/sync.RWMutex by value.
//     Copying a mutex forks its state; the copy guards nothing.
//
// The analysis is per-function and does not follow calls, so a helper
// that blocks internally is not seen through — name such helpers
// clearly and keep lock scopes tight instead.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"wirelesshart/tools/lint/analysis"
	"wirelesshart/tools/lint/analysis/cfa"
)

// Analyzer flags locks held across blocking operations and locks copied
// by value.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "flags mutexes held across blocking operations and locks copied by value",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkSignature(pass, fn)
			if fn.Body == nil {
				continue
			}
			checkBody(pass, fn.Body)
			for _, lit := range cfa.Literals(fn.Body) {
				checkLitSignature(pass, lit)
				checkBody(pass, lit.Body)
			}
		}
	}
	return nil
}

// --- check 2: locks copied by value ---

func checkSignature(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			reportValueLock(pass, f.Type, "receiver", fieldName(f))
		}
	}
	checkFieldList(pass, fn.Type.Params, "parameter")
	checkFieldList(pass, fn.Type.Results, "result")
}

func checkLitSignature(pass *analysis.Pass, lit *ast.FuncLit) {
	checkFieldList(pass, lit.Type.Params, "parameter")
	checkFieldList(pass, lit.Type.Results, "result")
}

func checkFieldList(pass *analysis.Pass, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		reportValueLock(pass, f.Type, kind, fieldName(f))
	}
}

func fieldName(f *ast.Field) string {
	if len(f.Names) > 0 {
		return f.Names[0].Name
	}
	return ""
}

func reportValueLock(pass *analysis.Pass, typeExpr ast.Expr, kind, name string) {
	t := pass.TypesInfo.TypeOf(typeExpr)
	if t == nil {
		return
	}
	if lock := lockPath(t); lock != "" {
		what := kind
		if name != "" {
			what = fmt.Sprintf("%s %q", kind, name)
		}
		pass.Reportf(typeExpr.Pos(),
			"%s passes %s by value; the copy guards nothing — use a pointer",
			what, lock)
	}
}

// checkAssignCopies flags x := y / x = y where y is an existing value of
// a lock-carrying type (composite literals and zero values are creation,
// not copies, and stay legal).
func checkAssignCopies(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) || len(as.Rhs) != len(as.Lhs) {
				break
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue // discarded, nothing aliases the copy
			}
			switch rhs.(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			default:
				continue // literals, calls, conversions: fresh values
			}
			t := pass.TypesInfo.TypeOf(rhs)
			if t == nil {
				continue
			}
			if lock := lockPath(t); lock != "" {
				pass.Reportf(as.Pos(),
					"assignment copies %s by value; the copy guards nothing — use a pointer", lock)
			}
		}
		return true
	})
}

// lockPath reports how t carries a lock by value: "sync.Mutex" itself, or
// "sync.RWMutex (via field mu of T)" when embedded in a struct/array.
// Pointers, maps, slices, and channels break the by-value chain.
func lockPath(t types.Type) string {
	seen := make(map[types.Type]bool)
	var walk func(t types.Type) string
	walk = func(t types.Type) string {
		if seen[t] {
			return ""
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
				(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
				return "sync." + obj.Name()
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				if inner := walk(f.Type()); inner != "" {
					return fmt.Sprintf("%s (via field %s)", inner, f.Name())
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return ""
	}
	return walk(t)
}

// --- check 1: locks held across blocking operations ---

type blockKind int

const (
	notBlocking blockKind = iota
	chanSend
	chanRecv
	blockingSelect
	blockingCall
	condWait
)

func (k blockKind) String() string {
	switch k {
	case chanSend:
		return "channel send"
	case chanRecv:
		return "channel receive"
	case blockingSelect:
		return "select with no default"
	case condWait:
		return "sync.Cond.Wait"
	default:
		return "blocking call"
	}
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	checkAssignCopies(pass, body)
	g := cfa.New(body)

	// Comm statements live in their clause blocks; the SelectStmt atom is
	// the single blocking point, so the clause copies must not re-report.
	inComm := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := n.(*ast.CommClause); ok && c.Comm != nil {
			inComm[c.Comm] = true
		}
		return true
	})

	// Collect the lock universe and per-block transfer up front.
	universe := make(map[string]bool)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if key, locked := lockEvent(pass, n); key != "" && locked {
				universe[key] = true
			}
		}
	}
	if len(universe) == 0 {
		return
	}

	// cfa blocks do not record predecessors; recover them from Succs.
	preds := make(map[*cfa.Block][]*cfa.Block, len(g.Blocks))
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], blk)
		}
	}

	// Must-hold fixpoint: in[b] = ∩ out[p]; out initialized to the full
	// universe so back edges do not erase facts before stabilizing.
	out := make(map[*cfa.Block]map[string]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		out[b] = copySet(universe)
	}
	out[g.Entry] = apply(pass, g.Entry, make(map[string]bool), nil, nil)
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if b == g.Entry {
				continue
			}
			in := meet(preds[b], out, universe)
			next := apply(pass, b, in, nil, nil)
			if !equalSet(next, out[b]) {
				out[b] = next
				changed = true
			}
		}
	}

	// Report pass: replay each block from its stable in-set.
	reported := make(map[ast.Node]bool)
	for _, b := range g.Blocks {
		var in map[string]bool
		if b == g.Entry {
			in = make(map[string]bool)
		} else {
			in = meet(preds[b], out, universe)
		}
		apply(pass, b, in, inComm, reported)
	}
}

func meet(preds []*cfa.Block, out map[*cfa.Block]map[string]bool, universe map[string]bool) map[string]bool {
	if len(preds) == 0 {
		return make(map[string]bool)
	}
	in := copySet(universe)
	for _, p := range preds {
		for k := range in {
			if !out[p][k] {
				delete(in, k)
			}
		}
	}
	return in
}

// apply runs the transfer function of one block. When report is non-nil
// it also emits diagnostics for blocking atoms reached with locks held.
func apply(pass *analysis.Pass, b *cfa.Block, in map[string]bool, inComm map[ast.Node]bool, reported map[ast.Node]bool) map[string]bool {
	held := copySet(in)
	for _, n := range b.Nodes {
		if reported != nil {
			reportBlocking(pass, n, held, inComm, reported)
		}
		if key, locked := lockEvent(pass, n); key != "" {
			if locked {
				held[key] = true
			} else {
				delete(held, key)
			}
		}
	}
	return held
}

// lockEvent classifies an atom as mu.Lock()/mu.RLock() (locked=true) or
// mu.Unlock()/mu.RUnlock() (locked=false). Deferred unlocks run at
// return, so DeferStmt atoms are no-ops here: the lock stays held
// through the rest of the function, which is exactly what matters for
// blocking operations after it.
func lockEvent(pass *analysis.Pass, n ast.Node) (key string, locked bool) {
	stmt, ok := n.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	key = renderLock(pass, sel.X)
	if key == "" {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return key, true
	case "Unlock", "RUnlock":
		return key, false
	}
	return "", false
}

func reportBlocking(pass *analysis.Pass, n ast.Node, held map[string]bool, inComm map[ast.Node]bool, reported map[ast.Node]bool) {
	if len(held) == 0 || reported[n] || inComm[n] {
		return
	}
	kind := classify(pass, n, inComm)
	if kind == notBlocking {
		return
	}
	if kind == condWait && len(held) < 2 {
		return // Wait releases its own lock; one held lock is the contract
	}
	reported[n] = true
	pass.Reportf(n.Pos(),
		"lock %s held across %s; blocking while holding a lock stalls every contender — unlock first or narrow the critical section",
		heldNames(held), kind)
}

// classify decides whether one atom blocks. FuncLits inside the atom are
// skipped: they execute later, not while the lock is held here.
func classify(pass *analysis.Pass, n ast.Node, inComm map[ast.Node]bool) blockKind {
	if sel, ok := n.(*ast.SelectStmt); ok {
		for _, c := range sel.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				return notBlocking // default clause: non-blocking poll
			}
		}
		return blockingSelect
	}
	// A RangeStmt atom embeds its whole body, but the body statements are
	// their own atoms; only the ranged expression runs at the head.
	if rng, ok := n.(*ast.RangeStmt); ok {
		if t := pass.TypesInfo.TypeOf(rng.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return chanRecv
			}
		}
		return classify(pass, rng.X, inComm)
	}
	// Launching a goroutine does not block the launcher; only argument
	// evaluation happens here.
	if g, ok := n.(*ast.GoStmt); ok {
		kind := notBlocking
		for _, arg := range g.Call.Args {
			if k := classify(pass, arg, inComm); k != notBlocking {
				kind = k
				break
			}
		}
		return kind
	}
	kind := notBlocking
	ast.Inspect(n, func(x ast.Node) bool {
		if kind != notBlocking {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			return false // nested select atoms classified on their own
		case *ast.SendStmt:
			if !inComm[x] {
				kind = chanSend
			}
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				kind = chanRecv
				return false
			}
		case *ast.CallExpr:
			if k := classifyCall(pass, x); k != notBlocking {
				kind = k
				return false
			}
		}
		return true
	})
	return kind
}

func classifyCall(pass *analysis.Pass, call *ast.CallExpr) blockKind {
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return notBlocking
	}
	switch fn.Pkg().Path() {
	case "net/http":
		return blockingCall
	case "time":
		if fn.Name() == "Sleep" {
			return blockingCall
		}
	case "sync":
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil || fn.Name() != "Wait" {
			return notBlocking
		}
		switch named := deref(recv.Type()).(type) {
		case *types.Named:
			switch named.Obj().Name() {
			case "WaitGroup":
				return blockingCall
			case "Cond":
				return condWait
			}
		}
	}
	return notBlocking
}

// --- shared helpers ---

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names) // deterministic diagnostics regardless of set order
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%q", n)
	}
	return s
}

// renderLock canonicalizes the receiver of a Lock/Unlock call to a key
// like "s.mu". Receivers that are not simple ident/selector chains are
// not tracked (returns "").
func renderLock(pass *analysis.Pass, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		if pass.TypesInfo.ObjectOf(x) == nil {
			return ""
		}
		return x.Name
	case *ast.SelectorExpr:
		base := renderLock(pass, x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return renderLock(pass, x.X)
	case *ast.UnaryExpr:
		return renderLock(pass, x.X)
	}
	return ""
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func copySet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func equalSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}
