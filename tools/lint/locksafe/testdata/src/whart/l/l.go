package l

import (
	"net/http"
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	state map[string]int
	ch    chan int
}

func (s *server) sendWhileLocked(v int) {
	s.mu.Lock()
	s.state["n"] = v
	s.ch <- v // want `lock "s.mu" held across channel send`
	s.mu.Unlock()
}

func (s *server) recvWhileLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `lock "s.mu" held across channel receive`
}

func (s *server) selectWhileLocked(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `lock "s.mu" held across select with no default`
	case v := <-s.ch:
		s.state["n"] = v
	case <-done:
	}
}

func (s *server) httpWhileLocked(url string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := http.Get(url) // want `lock "s.mu" held across blocking call`
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func (s *server) sleepWhileLocked() {
	s.mu.Lock()
	time.Sleep(time.Second) // want `lock "s.mu" held across blocking call`
	s.mu.Unlock()
}

func (s *server) waitWhileLocked(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `lock "s.mu" held across blocking call`
}

type pair struct {
	a, b sync.Mutex
	cond *sync.Cond
}

func (p *pair) condWithExtraLock() {
	p.a.Lock()
	p.b.Lock()
	p.cond.Wait() // want `lock "p.a", "p.b" held across sync.Cond.Wait`
	p.b.Unlock()
	p.a.Unlock()
}

// --- locks copied by value ---

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g guarded) valueReceiver() int { // want `receiver "g" passes sync.Mutex \(via field mu\) by value`
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func takesMutex(mu sync.Mutex) { // want `parameter "mu" passes sync.Mutex by value`
	mu.Lock()
	mu.Unlock()
}

func takesRW(rw sync.RWMutex) { // want `parameter "rw" passes sync.RWMutex by value`
	_ = rw
}

func copiesStruct(g *guarded) {
	snapshot := *g // want `assignment copies sync.Mutex \(via field mu\) by value`
	_ = snapshot
}

// --- negatives ---

func (s *server) unlockBeforeSend(v int) {
	s.mu.Lock()
	s.state["n"] = v
	s.mu.Unlock()
	s.ch <- v // lock released first: fine
}

func (s *server) conditionalLock(v int, fast bool) {
	if !fast {
		s.mu.Lock()
		s.state["n"] = v
		s.mu.Unlock()
	}
	s.ch <- v // not locked on every path: must-hold set is empty
}

func (s *server) pollWhileLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // default clause makes this a non-blocking poll
	case v := <-s.ch:
		return v
	default:
		return s.state["n"]
	}
}

func (p *pair) condOwnLockOnly() {
	p.a.Lock()
	p.cond.Wait() // Wait releases its own lock; one held lock is the contract
	p.a.Unlock()
}

func (s *server) launchWhileLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { // launching is non-blocking; the literal runs unlocked
		s.ch <- 1
	}()
}

func (g *guarded) pointerReceiver() int { // pointer receiver: no copy
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func takesPointer(mu *sync.Mutex) { // pointer parameter: no copy
	mu.Lock()
	mu.Unlock()
}

func freshMutex() {
	var mu sync.Mutex // declaration is creation, not a copy
	mu.Lock()
	mu.Unlock()
	other := sync.Mutex{} // composite literal: fresh value, not a copy
	_ = other
}

func noLockAround(ch chan int) {
	ch <- 1 // no lock in sight
	<-ch
	time.Sleep(time.Millisecond)
}

func relockAfterBlocking(s *server, v int) {
	s.mu.Lock()
	s.state["n"] = v
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // unlocked here
	s.mu.Lock()
	s.state["m"] = v
	s.mu.Unlock()
}

func nestedPlainLocks(p *pair) {
	p.a.Lock()
	p.b.Lock() // acquiring a second lock is not classified as blocking here
	p.b.Unlock()
	p.a.Unlock()
}

func lockInLoopBody(s *server, xs []int) {
	for _, v := range xs {
		s.mu.Lock()
		s.state["n"] += v
		s.mu.Unlock()
	}
	<-s.ch // loop always released the lock before exiting
}
