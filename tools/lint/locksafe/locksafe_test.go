package locksafe_test

import (
	"testing"

	"wirelesshart/tools/lint/analysis/analysistest"
	"wirelesshart/tools/lint/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.RunWithStubs(t, "testdata/src/whart", locksafe.Analyzer, "./...")
}
