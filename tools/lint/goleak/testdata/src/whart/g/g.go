package g

import (
	"context"
	"net/http"
	"sync"
	"time"
)

func bareLiteral() {
	go func() { // want `goroutine is launched with no join or cancellation path`
		for {
			time.Sleep(time.Second)
		}
	}()
}

func logForever() {
	for {
		time.Sleep(time.Minute)
	}
}

func bareNamed() {
	go logForever() // want `goroutine is launched with no join or cancellation path`
}

type spinner struct{ n int }

func (s *spinner) spin() {
	for {
		s.n++
	}
}

func bareMethod(s *spinner) {
	go s.spin() // want `goroutine is launched with no join or cancellation path`
}

func argEvaluatedButNoLink(s *spinner, label string) {
	go func(tag string) { // want `goroutine is launched with no join or cancellation path`
		_ = tag
		s.spin()
	}(label)
}

// --- negatives ---

func waitGroupJoin(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done() // WaitGroup closes the join path
		}()
	}
	wg.Wait()
}

func channelResult() <-chan int {
	out := make(chan int)
	go func() {
		out <- 42 // the send is the join path
	}()
	return out
}

func doneChannel(done chan struct{}) {
	go func() {
		defer close(done) // closing the done channel signals completion
		time.Sleep(time.Millisecond)
	}()
}

func worker(jobs chan int) {
	for j := range jobs {
		_ = j
	}
}

func channelArg(jobs chan int) {
	go worker(jobs) // channel-typed argument: lifecycle handed over
}

func process(ctx context.Context) {
	<-ctx.Done()
}

func contextArg(ctx context.Context) {
	go process(ctx) // context-typed argument: cancellable
}

func contextInBody(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done(): // captured context: cancellable
				return
			case <-time.After(time.Second):
			}
		}
	}()
}

func crossPackage(srv *http.Server) {
	go srv.ListenAndServe() // other package's body is not visible: stay silent
}

func dynamicCall(f func()) {
	go f() // dynamic callee: not visible, stay silent
}

func tickerLoop(stop chan struct{}) {
	t := time.NewTicker(time.Second)
	go func() {
		for {
			select {
			case <-t.C: // channel-typed field: linked to the ticker
			case <-stop:
				return
			}
		}
	}()
}
