package goleak_test

import (
	"testing"

	"wirelesshart/tools/lint/analysis/analysistest"
	"wirelesshart/tools/lint/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.RunWithStubs(t, "testdata/src/whart", goleak.Analyzer, "./...")
}
