// Package goleak defines an analyzer that flags fire-and-forget
// goroutines: a `go` statement whose goroutine has no visible join or
// cancellation path back to its parent.
//
// The fleet and cluster layers spawn workers constantly; a goroutine
// with no WaitGroup, channel, or context tying it to its parent cannot
// be flushed on SIGTERM drain and either leaks or races the snapshot
// save. The analyzer inspects the launched function body (function
// literals directly; named functions and methods of the same package at
// depth one) plus the launch-site arguments for any of:
//
//   - a channel operation or channel-typed value (send, receive, close,
//     select, or just holding a channel — passing one along counts);
//   - sync.WaitGroup use (Done/Wait or a WaitGroup-typed value);
//   - a context.Context value (ctx.Done(), ctx.Err(), or passing ctx on).
//
// If none is visible the launch is flagged. Calls into other packages
// are not followed, so a goroutine whose only lifecycle management is
// buried in an imported helper needs a `//whartlint:ignore goleak`
// with a justification naming that helper.
package goleak

import (
	"go/ast"
	"go/types"

	"wirelesshart/tools/lint/analysis"
)

// Analyzer flags goroutines with no join or cancellation path.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "flags goroutines launched with no join or cancellation path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Map package-level functions and methods to their declarations so
	// `go worker(...)` launches can be inspected at depth one.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.ObjectOf(fn.Name); obj != nil {
					decls[obj] = fn
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			check(pass, g, decls)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) {
	// Lifecycle-typed arguments at the launch site are a join path: the
	// goroutine was handed a channel, context, or WaitGroup.
	for _, arg := range g.Call.Args {
		if lifecycleExpr(pass, arg) {
			return
		}
	}

	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		obj := calleeObject(pass, g.Call)
		if obj == nil || obj.Pkg() == nil || obj.Pkg() != pass.Pkg {
			return // cross-package or dynamic: not visible, stay silent
		}
		decl, ok := decls[obj]
		if !ok || decl.Body == nil {
			return
		}
		body = decl.Body
	}

	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && lifecycleExpr(pass, e) {
			found = true
			return false
		}
		return true
	})
	if !found {
		pass.Reportf(g.Pos(),
			"goroutine is launched with no join or cancellation path: no WaitGroup, channel, or context ties it to its parent")
	}
}

// lifecycleExpr reports whether e is a value that gives the goroutine a
// lifecycle link: a channel, a context.Context, or a sync.WaitGroup.
func lifecycleExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	return lifecycleType(t)
}

func lifecycleType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return lifecycleType(u.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() == nil {
			return false
		}
		switch {
		case obj.Pkg().Path() == "context" && obj.Name() == "Context":
			return true
		case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup":
			return true
		}
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		// context.Context flows through interface-typed params too.
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Deadline" {
				return true
			}
		}
	}
	return false
}

// calleeObject resolves the object a static call names, or nil.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(fun)
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			return sel.Obj()
		}
		return pass.TypesInfo.ObjectOf(fun.Sel)
	}
	return nil
}
