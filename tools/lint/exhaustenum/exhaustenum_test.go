package exhaustenum_test

import (
	"testing"

	"wirelesshart/tools/lint/analysis/analysistest"
	"wirelesshart/tools/lint/exhaustenum"
)

func TestExhaustenum(t *testing.T) {
	analysistest.RunWithStubs(t, "testdata/src/whart", exhaustenum.Analyzer, "./...")
}
