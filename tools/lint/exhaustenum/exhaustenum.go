// Package exhaustenum requires switches over the model's enum types —
// failure scenarios (link.FailureKind), node roles (topology.NodeKind),
// modulations (channel.Modulation) and any future first-party enum — to
// either cover every declared member or carry a default clause. The
// failure-injection matrix of the paper (Section VI-C) is exactly the kind
// of place where adding a fourth scenario must produce compile-visible
// work items, not a silent fall-through that analyzes the new scenario as
// "no failure".
//
// An enum is any named type, defined in a first-party package, with an
// integer or string underlying type and at least two package-level
// constants of that exact type. Coverage is by constant value, so aliased
// members (two names, one value) count as one case.
package exhaustenum

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"wirelesshart/tools/lint/analysis"
)

// Analyzer is the exhaustenum pass.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustenum",
	Doc: "require switch statements over first-party enum types (failure scenarios, " +
		"node kinds, modulations) to cover all members or declare a default clause",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !firstParty(pass, obj.Pkg()) {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return
	}

	members := enumMembers(obj.Pkg(), named)
	if len(members) < 2 {
		return
	}

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: new members cannot fall through silently
		}
		for _, e := range cc.List {
			etv, ok := pass.TypesInfo.Types[e]
			if !ok {
				return
			}
			if etv.Value == nil {
				return // non-constant case: coverage is not decidable
			}
			covered[etv.Value.ExactString()] = true
		}
	}

	var missing []string
	for val, names := range members {
		if !covered[val] {
			missing = append(missing, names[0])
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Switch, "switch over %s is not exhaustive and has no default clause: missing %s",
		typeName(pass, named), strings.Join(missing, ", "))
}

// enumMembers returns the package-level constants of type named, keyed by
// exact constant value; each value maps to its declared names in source
// order of the scope (sorted for determinism).
func enumMembers(pkg *types.Package, named *types.Named) map[string][]string {
	members := make(map[string][]string)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		members[key] = append(members[key], name)
	}
	for _, names := range members {
		sort.Strings(names)
	}
	return members
}

// firstParty reports whether pkg belongs to the module under analysis (the
// analyzed package itself always counts).
func firstParty(pass *analysis.Pass, pkg *types.Package) bool {
	if pkg == pass.Pkg {
		return true
	}
	if pass.Module == "" {
		return false
	}
	return pkg.Path() == pass.Module || strings.HasPrefix(pkg.Path(), pass.Module+"/")
}

// typeName renders the enum type relative to the analyzed package.
func typeName(pass *analysis.Pass, named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == pass.Pkg {
		return obj.Name()
	}
	return fmt.Sprintf("%s.%s", obj.Pkg().Name(), obj.Name())
}
