// Stub of the real failure-scenario enum.
package link

// FailureKind mirrors the paper's three failure classes.
type FailureKind int

const (
	// Transient failures last one slot.
	Transient FailureKind = iota + 1
	// RandomDuration failures block the link for several slots.
	RandomDuration
	// Permanent failures never recover.
	Permanent
)
