package e

import "wirelesshart/internal/link"

// Measure is a local string-valued enum.
type Measure string

const (
	Reachability Measure = "reachability"
	Delay        Measure = "delay"
	Utilization  Measure = "utilization"
	// Util is a legacy alias: same value as Utilization, so covering
	// either name covers the member.
	Util Measure = "utilization"
)

func missingMember(k link.FailureKind) string {
	switch k { // want `switch over link.FailureKind is not exhaustive and has no default clause: missing Permanent`
	case link.Transient:
		return "transient"
	case link.RandomDuration:
		return "random"
	}
	return ""
}

func missingTwo(m Measure) int {
	switch m { // want `switch over Measure is not exhaustive and has no default clause: missing Delay, Util`
	case Reachability:
		return 1
	}
	return 0
}

func defaultClause(k link.FailureKind) string {
	switch k { // a default keeps new members from silently falling through
	case link.Transient:
		return "transient"
	default:
		return "other"
	}
}

func fullCoverage(k link.FailureKind) string {
	switch k {
	case link.Transient:
		return "transient"
	case link.RandomDuration:
		return "random"
	case link.Permanent:
		return "permanent"
	}
	return ""
}

func aliasCoverage(m Measure) int {
	switch m { // Util aliases Utilization, so all three values are covered
	case Reachability, Delay, Util:
		return 1
	}
	return 0
}

func nonConstantCase(m Measure, other Measure) int {
	switch m { // non-constant case: coverage is not decidable, stay silent
	case other:
		return 1
	}
	return 0
}

func notAnEnum(x int) int {
	switch x { // plain int is not an enum type
	case 1:
		return 1
	}
	return 0
}

type once int

const only once = 1

func singleMember(o once) int {
	switch o { // fewer than two members: not an enum
	case only:
		return 1
	}
	return 0
}
