// Package seeded is a deliberately broken fixture. It lives in its own
// module so neither repo build compiles it; `make lint-selftest` runs
// whart-lint over it and asserts FAILURE, proving the installed suite
// still catches the map-order float-accumulation bug class (the PR 6
// root cause) end to end — a canary for the lint wiring itself.
package seeded

// MeanWeight sums float weights in map iteration order: the sum's low
// bits differ from run to run. detrange must flag the accumulation.
func MeanWeight(w map[string]float64) float64 {
	var sum float64
	for _, v := range w {
		sum += v
	}
	return sum / float64(len(w))
}
