module seeded

go 1.22
