module wirelesshart/tools/lint

go 1.22
