package layercheck_test

import (
	"testing"

	"wirelesshart/tools/lint/analysis/analysistest"
	"wirelesshart/tools/lint/layercheck"
)

func TestLayercheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/whart", layercheck.Analyzer, "./...")
}
