package main

import (
	_ "wirelesshart/cmd/whart" // want `cmd packages must not be imported from outside cmd`
	_ "wirelesshart/internal/engine"
)

func main() {}
