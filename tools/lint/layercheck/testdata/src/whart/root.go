// The root facade may depend on any layer except programs under cmd.
package whart

import (
	_ "wirelesshart/cmd/whart" // want `cmd packages must not be imported from outside cmd`
	_ "wirelesshart/internal/engine"
)
