package main

import (
	_ "wirelesshart/cmd/whart" // cmd-to-cmd is allowed
	_ "wirelesshart/internal/core"
	_ "wirelesshart/internal/engine"
)

func main() {}
