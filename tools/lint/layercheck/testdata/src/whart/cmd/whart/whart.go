// A helper library under cmd: only other cmd packages may import it.
package whart
