// An internal package that never declared its layer.
package rogue

import (
	_ "wirelesshart/internal/linalg" // want `package wirelesshart/internal/rogue is not registered in the layercheck DAG`
)
