// cluster is a stdlib-only leaf: it ships keys and opaque JSON between
// replicas and must never reach up into the engine.
package cluster

import (
	_ "wirelesshart/internal/engine" // want `import of wirelesshart/internal/engine: not a registered edge of the internal/cluster layer`
)
