package schedule
