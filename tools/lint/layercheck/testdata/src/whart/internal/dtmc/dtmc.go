// dtmc may import linalg and nothing else: reaching up to core breaks the
// leaf contract.
package dtmc

import (
	_ "wirelesshart/internal/core" // want `import of wirelesshart/internal/core: not a registered edge of the internal/dtmc layer`
	_ "wirelesshart/internal/linalg"
)
