// core importing obs or engine is the canonical layering violation: the
// solver must stay cacheable and observability-free.
package core

import (
	_ "wirelesshart/internal/engine" // want `import of wirelesshart/internal/engine: not a registered edge of the internal/core layer \(core is below the engine`
	_ "wirelesshart/internal/obs"    // want `import of wirelesshart/internal/obs: not a registered edge of the internal/core layer \(core must stay observability-free`
	_ "wirelesshart/internal/stats"
)
