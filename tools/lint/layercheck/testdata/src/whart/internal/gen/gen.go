// gen may emit specs via topology/schedule/spec — and link, for drawing
// fading-chain parameters — but must not reach the engine: orchestration
// belongs to fleet.
package gen

import (
	_ "wirelesshart/internal/engine" // want `import of wirelesshart/internal/engine: not a registered edge of the internal/gen layer`
	_ "wirelesshart/internal/link"
	_ "wirelesshart/internal/schedule"
	_ "wirelesshart/internal/spec"
	_ "wirelesshart/internal/topology"
)
