package stats
