package obs
