// fleet may drive gen populations through the engine and obs, but the
// numerical leaves below pathmodel are not its business.
package fleet

import (
	_ "wirelesshart/internal/engine"
	_ "wirelesshart/internal/gen"
	_ "wirelesshart/internal/linalg" // want `import of wirelesshart/internal/linalg: not a registered edge of the internal/fleet layer`
	_ "wirelesshart/internal/obs"
	_ "wirelesshart/internal/spec"
)
