package spec
