// linalg is a leaf: no first-party imports at all.
package linalg
