package link
