package engine
