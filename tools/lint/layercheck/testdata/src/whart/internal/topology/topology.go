package topology
