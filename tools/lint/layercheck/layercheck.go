// Package layercheck enforces the repo's import-boundary DAG. The solver
// is layered leaf-to-top as
//
//	linalg/stats/channel/topology/obs/control
//	  -> dtmc/schedule -> link -> pathmodel -> measures/analytic/des
//	  -> core -> spec/gen -> engine -> experiments/fleet
//	  -> root facade -> cmd / examples
//
// and every internal package declares its direct first-party imports in
// the allowedImports table below. Growing a new edge is a deliberate
// one-line diff here, not an accident in an import block. Three rules the
// numerical model depends on fall out of the table: internal/linalg and
// internal/dtmc stay leaves, internal/core never sees internal/obs or
// internal/engine (solver purity: core results must be cacheable without
// observability side effects), and nothing outside cmd imports cmd.
package layercheck

import (
	"strconv"
	"strings"

	"wirelesshart/tools/lint/analysis"
)

// Analyzer is the layercheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "layercheck",
	Doc: "enforce the module's import-boundary DAG: internal packages may only " +
		"import the first-party packages registered for their layer, and cmd " +
		"packages are never imported from outside cmd",
	Run: run,
}

// allowedImports is the layering DAG: for each internal package (path
// relative to the module root) the complete set of first-party packages it
// may import directly. A package absent from this table is not allowed to
// exist under internal/ until it registers its layer here.
var allowedImports = map[string][]string{
	// Leaves: pure math, pure data, no first-party imports. linalg and
	// dtmc staying (near-)leaves is what keeps the compiled CSR kernel
	// reusable everywhere above them.
	"internal/linalg":   {},
	"internal/stats":    {},
	"internal/channel":  {},
	"internal/topology": {},
	"internal/obs":      {},
	"internal/control":  {},
	// cluster is the distribution leaf: consistent-hash ring, peer HTTP
	// client and the snapshot codec. It moves canonical keys and opaque
	// JSON, never engine types, so it needs no first-party imports — and
	// must never grow one upward into the engine.
	"internal/cluster": {},

	"internal/dtmc":     {"internal/linalg"},
	"internal/schedule": {"internal/topology"},
	"internal/link":     {"internal/channel", "internal/dtmc"},

	"internal/pathmodel": {"internal/dtmc", "internal/linalg", "internal/link", "internal/stats"},

	"internal/measures": {"internal/linalg", "internal/link", "internal/pathmodel", "internal/schedule", "internal/stats"},
	"internal/analytic": {"internal/link", "internal/pathmodel", "internal/schedule", "internal/stats"},
	"internal/des":      {"internal/channel", "internal/link", "internal/pathmodel", "internal/schedule", "internal/stats", "internal/topology"},

	"internal/core": {"internal/link", "internal/measures", "internal/pathmodel", "internal/schedule", "internal/stats", "internal/topology"},
	"internal/spec": {"internal/channel", "internal/core", "internal/link", "internal/schedule", "internal/topology"},

	"internal/engine": {"internal/cluster", "internal/core", "internal/link", "internal/measures", "internal/obs", "internal/pathmodel", "internal/spec"},

	// The topology generator sits beside spec: it emits specs and realizes
	// them, but never sees the engine — fleets own orchestration.
	"internal/gen": {"internal/link", "internal/schedule", "internal/spec", "internal/topology"},

	// Fleet evaluation drives generated populations through the engine. It
	// may see core result types, spec (to clone failure-sweep scenarios)
	// and the obs registry, but never cmd.
	"internal/fleet": {"internal/core", "internal/engine", "internal/gen", "internal/obs", "internal/spec", "internal/stats"},

	"internal/experiments": {
		"internal/channel", "internal/control", "internal/core", "internal/des",
		"internal/link", "internal/measures", "internal/pathmodel", "internal/schedule",
		"internal/stats", "internal/topology",
	},
}

// denyReasons adds the invariant behind the most load-bearing forbidden
// edges to the diagnostic.
var denyReasons = map[[2]string]string{
	{"internal/core", "internal/obs"}:    "core must stay observability-free; inject tracing through core.Tracer instead",
	{"internal/core", "internal/engine"}: "core is below the engine; move shared code down, not the import up",
}

func run(pass *analysis.Pass) error {
	module := pass.Module
	if module == "" {
		return nil
	}
	pkgPath := pass.Pkg.Path()
	rel := relPath(module, pkgPath)
	if rel == "" && pkgPath != module {
		return nil // foreign package; nothing to enforce
	}

	var allowed map[string]bool
	registered := false
	if rules, ok := allowedImports[rel]; ok {
		registered = true
		allowed = make(map[string]bool, len(rules))
		for _, r := range rules {
			allowed[r] = true
		}
	}

	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			impRel := relPath(module, path)
			if impRel == "" && path != module {
				continue // stdlib or third-party import
			}

			// Universal rule: cmd packages are programs (plus their
			// private helpers); only code under the same cmd subtree may
			// import them.
			if inTree(impRel, "cmd") && !inTree(rel, "cmd") {
				pass.Reportf(imp.Pos(), "import of %s: cmd packages must not be imported from outside cmd", path)
				continue
			}

			if !strings.HasPrefix(rel, "internal/") {
				continue // root facade, cmd and examples may use any layer
			}
			if !registered {
				pass.Reportf(imp.Pos(),
					"package %s is not registered in the layercheck DAG; add it to allowedImports with its permitted imports", pkgPath)
				return nil
			}
			if allowed[impRel] {
				continue
			}
			msg := "import of " + path + ": not a registered edge of the " + rel + " layer"
			if reason, ok := denyReasons[[2]string{rel, impRel}]; ok {
				msg += " (" + reason + ")"
			}
			pass.Reportf(imp.Pos(), "%s", msg)
		}
	}
	return nil
}

// relPath returns path relative to the module root ("" when path is the
// module root itself or lies outside the module).
func relPath(module, path string) string {
	if rest, ok := strings.CutPrefix(path, module+"/"); ok {
		return rest
	}
	return ""
}

// inTree reports whether rel is tree or lies under tree/.
func inTree(rel, tree string) bool {
	return rel == tree || strings.HasPrefix(rel, tree+"/")
}
