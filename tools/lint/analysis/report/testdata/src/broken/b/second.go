package b

func delta() int {
	if alpha() > 0 {
		return 2
	}
	return 3
}
