// A deliberately broken package: every function declaration and every
// return statement draws a diagnostic from the test analyzers, across
// two files, so the formatter goldens lock interleaved multi-file,
// multi-analyzer output.
package b

func alpha() int {
	return 1
}

//whartlint:ignore funcflag this one declaration is intentionally silenced
func beta() {}

//whartlint:ignore returnflag stale: beta has no return statement to silence
func gamma() {}
