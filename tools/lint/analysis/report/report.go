// Package report renders runner diagnostics in the formats whart-lint
// serves: plain text for terminals, JSON for scripting, and SARIF 2.1.0
// for GitHub code-scanning upload. All formats are deterministic — the
// runner hands over position-sorted diagnostics and the formatters add
// no map iteration or timestamps — so identical findings produce
// byte-identical reports (the golden tests in this package pin that).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"wirelesshart/tools/lint/analysis"
	"wirelesshart/tools/lint/analysis/runner"
)

// StaleRuleID is the synthetic rule under which stale suppression
// directives are reported; it lives beside the analyzer names in every
// format.
const StaleRuleID = "staleignore"

// StaleDiagnostics converts stale suppression directives into ordinary
// diagnostics under StaleRuleID, so every output format carries them.
func StaleDiagnostics(stale []runner.Directive) []runner.Diagnostic {
	var out []runner.Diagnostic
	for _, d := range stale {
		out = append(out, runner.Diagnostic{
			Position: d.Position,
			Category: StaleRuleID,
			Message: fmt.Sprintf("suppression %s %s silences nothing; fix the analyzer name or delete the directive",
				runner.SuppressPrefix, strings.Join(d.Names, ",")),
		})
	}
	return out
}

// Merge combines diagnostic lists back into one position-sorted slice.
func Merge(lists ...[]runner.Diagnostic) []runner.Diagnostic {
	var all []runner.Diagnostic
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Category < b.Category
	})
	return all
}

// relativize rewrites file to a slash-separated path relative to baseDir
// when it lies under it; CI uploads and golden tests need paths that do
// not depend on the checkout location.
func relativize(baseDir, file string) string {
	if baseDir == "" {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(baseDir, file)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}

// Text writes the classic one-line-per-finding terminal format.
func Text(w io.Writer, diags []runner.Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// Finding is one diagnostic of the JSON format.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Count    int       `json:"count"`
	Findings []Finding `json:"findings"`
}

// JSON writes the findings as one indented JSON document with paths
// relative to baseDir.
func JSON(w io.Writer, diags []runner.Diagnostic, baseDir string) error {
	rep := jsonReport{Count: len(diags), Findings: []Finding{}}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, Finding{
			File:     relativize(baseDir, d.Position.Filename),
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Analyzer: d.Category,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// SARIF 2.1.0 document structure (the subset GitHub code scanning
// consumes). Field order follows the spec's reading order so the output
// diffs cleanly.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// SARIF writes a SARIF 2.1.0 run: one rule per registered analyzer plus
// the staleignore rule, one error-level result per diagnostic, paths
// relative to baseDir under the %SRCROOT% base id. Every result's ruleId
// must resolve in the rules table, so diagnostics from unregistered
// categories are an error rather than an invalid document.
func SARIF(w io.Writer, diags []runner.Diagnostic, analyzers []*analysis.Analyzer, baseDir string) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	index := map[string]int{}
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	index[StaleRuleID] = len(rules)
	rules = append(rules, sarifRule{
		ID:               StaleRuleID,
		ShortDescription: sarifText{Text: "a //whartlint:ignore directive suppresses no diagnostic of any analyzer that ran"},
	})
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	for i, r := range rules {
		index[r.ID] = i
	}

	results := []sarifResult{}
	for _, d := range diags {
		ri, ok := index[d.Category]
		if !ok {
			return fmt.Errorf("report: diagnostic category %q has no registered rule", d.Category)
		}
		results = append(results, sarifResult{
			RuleID:    d.Category,
			RuleIndex: ri,
			Level:     "error",
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relativize(baseDir, d.Position.Filename), URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: d.Position.Line, StartColumn: d.Position.Column},
			}}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "whart-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
