package report_test

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"wirelesshart/tools/lint/analysis"
	"wirelesshart/tools/lint/analysis/load"
	"wirelesshart/tools/lint/analysis/report"
	"wirelesshart/tools/lint/analysis/runner"
)

// funcFlag and returnFlag produce interleaved diagnostics in the broken
// fixture so the goldens lock multi-file, multi-analyzer ordering.
var funcFlag = &analysis.Analyzer{
	Name: "funcflag",
	Doc:  "flag every function declaration (formatter test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "declaration of %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

var returnFlag = &analysis.Analyzer{
	Name: "returnflag",
	Doc:  "flag every return statement (formatter test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(r.Pos(), "return statement")
				}
				return true
			})
		}
		return nil
	},
}

// update regenerates the goldens: UPDATE_GOLDEN=1 go test ./analysis/report
var update = os.Getenv("UPDATE_GOLDEN") != ""

func brokenDiagnostics(t *testing.T) ([]runner.Diagnostic, []*analysis.Analyzer, string) {
	t.Helper()
	analyzers := []*analysis.Analyzer{funcFlag, returnFlag}
	baseDir, err := filepath.Abs("testdata/src/broken")
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	pkgs, err := load.Load(load.Config{Dir: baseDir}, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := runner.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	stale := res.Stale(analyzers)
	if len(stale) != 1 {
		t.Fatalf("fixture must contain exactly one stale directive, got %v", stale)
	}
	diags := report.Merge(res.Diagnostics, report.StaleDiagnostics(stale))
	return diags, analyzers, baseDir
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s: %v (regenerate with UPDATE_GOLDEN=1)", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenFormats locks all three output formats byte-for-byte over a
// broken multi-diagnostic package, including the stale-suppression
// finding and position-sorted ordering.
func TestGoldenFormats(t *testing.T) {
	diags, analyzers, baseDir := brokenDiagnostics(t)

	// Relativize the text format's positions through a copy so the
	// golden is checkout-independent like the other two formats.
	rel := make([]runner.Diagnostic, len(diags))
	copy(rel, diags)
	for i := range rel {
		if r, err := filepath.Rel(baseDir, rel[i].Position.Filename); err == nil {
			rel[i].Position.Filename = filepath.ToSlash(r)
		}
	}
	var buf bytes.Buffer
	if err := report.Text(&buf, rel); err != nil {
		t.Fatalf("text: %v", err)
	}
	checkGolden(t, "golden.txt", buf.Bytes())

	buf.Reset()
	if err := report.JSON(&buf, diags, baseDir); err != nil {
		t.Fatalf("json: %v", err)
	}
	checkGolden(t, "golden.json", buf.Bytes())

	buf.Reset()
	if err := report.SARIF(&buf, diags, analyzers, baseDir); err != nil {
		t.Fatalf("sarif: %v", err)
	}
	checkGolden(t, "golden.sarif", buf.Bytes())
}

// TestSARIFWellFormed decodes the SARIF output generically and checks
// the invariants the 2.1.0 schema demands of the subset we emit:
// version and $schema present, every result's ruleId resolving to a
// rule at its ruleIndex, and region line numbers positive.
func TestSARIFWellFormed(t *testing.T) {
	diags, analyzers, baseDir := brokenDiagnostics(t)
	var buf bytes.Buffer
	if err := report.SARIF(&buf, diags, analyzers, baseDir); err != nil {
		t.Fatalf("sarif: %v", err)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if doc.Version != "2.1.0" || doc.Schema == "" {
		t.Fatalf("version = %q, $schema = %q", doc.Version, doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "whart-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(diags))
	}
	for _, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Fatalf("result %q ruleIndex %d out of range", r.RuleID, r.RuleIndex)
		}
		if run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result ruleId %q does not match rules[%d].id %q", r.RuleID, r.RuleIndex, run.Tool.Driver.Rules[r.RuleIndex].ID)
		}
		if r.Level != "error" || r.Message.Text == "" {
			t.Errorf("result %q: level %q, message %q", r.RuleID, r.Level, r.Message.Text)
		}
		if len(r.Locations) != 1 || r.Locations[0].PhysicalLocation.Region.StartLine <= 0 {
			t.Errorf("result %q: bad location %+v", r.RuleID, r.Locations)
		}
		if filepath.IsAbs(r.Locations[0].PhysicalLocation.ArtifactLocation.URI) {
			t.Errorf("result %q: absolute artifact URI %q", r.RuleID, r.Locations[0].PhysicalLocation.ArtifactLocation.URI)
		}
	}
	// An unregistered category must refuse to emit an invalid document.
	bad := []runner.Diagnostic{{Category: "nosuchrule", Message: "x"}}
	if err := report.SARIF(&buf, bad, analyzers, baseDir); err == nil {
		t.Errorf("SARIF accepted a diagnostic with no registered rule")
	}
}
