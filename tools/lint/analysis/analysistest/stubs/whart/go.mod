module wirelesshart

go 1.22
