// Stub of the real internal/dtmc surface the analyzers watch.
package dtmc

// Chain is the DTMC builder stub.
type Chain struct{}

// Kernel is the compiled-chain stub.
type Kernel struct{}

// New returns an empty chain.
func New() *Chain { return &Chain{} }

// Validate mirrors the real stochasticity check.
func (c *Chain) Validate(tol float64) error {
	_ = tol
	return nil
}

// AddTransition mirrors the real edge builder.
func (c *Chain) AddTransition(from, to int, p float64) error {
	_, _, _ = from, to, p
	return nil
}

// AddTransitionFn mirrors the time-varying edge builder.
func (c *Chain) AddTransitionFn(from, to int, fn func(int) float64) error {
	_, _, _ = from, to, fn
	return nil
}

// Compile mirrors the kernel compiler (result-only API).
func (c *Chain) Compile() *Kernel { return &Kernel{} }

// Rebind mirrors the values-only recompile.
func (k *Kernel) Rebind(values []float64, tol float64) (*Kernel, error) {
	_, _ = values, tol
	return k, nil
}

// TransientBatch mirrors the batched transient solve.
func (k *Kernel) TransientBatch(kernels []*Kernel, p0 [][]float64, t0, steps int) ([][]float64, error) {
	_, _, _, _ = kernels, p0, t0, steps
	return nil, nil
}

// TransientBatchObserved mirrors the observed batched solve.
func (k *Kernel) TransientBatchObserved(kernels []*Kernel, p0 [][]float64, t0, steps int,
	observe func(int) error) ([][]float64, error) {
	_, _, _, _, _ = kernels, p0, t0, steps, observe
	return nil, nil
}
