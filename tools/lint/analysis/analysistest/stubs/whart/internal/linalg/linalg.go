// Stub of the real internal/linalg surface the analyzers watch.
package linalg

// CSR is the compressed-sparse-row matrix stub.
type CSR struct{}

// NewCSR mirrors the validating constructor.
func NewCSR(rows, cols int, rowPtr, col []int, val []float64) (*CSR, error) {
	_, _, _, _, _ = rows, cols, rowPtr, col, val
	return &CSR{}, nil
}

// WithValues mirrors the shared-pattern rebind.
func (m *CSR) WithValues(val []float64) (*CSR, error) {
	_ = val
	return m, nil
}

// MulVecBatch mirrors the K-scenario batched multiply.
func (m *CSR) MulVecBatch(dst, x []float64, k int, vals []float64) error {
	_, _, _, _ = dst, x, k, vals
	return nil
}

// MulVecBatchMasked mirrors the frontier-masked batched multiply.
func (m *CSR) MulVecBatchMasked(dst, x []float64, k int, vals []float64, srcActive, dstActive []bool) error {
	_, _, _, _, _, _ = dst, x, k, vals, srcActive, dstActive
	return nil
}
