// Stub of the real internal/channel surface the analyzers watch.
package channel

// SNRPartition mirrors the trace-partition result stub.
type SNRPartition struct{}

// PartitionSNRTrace mirrors the SNR thresholding fit.
func PartitionSNRTrace(trace []float64, k int) (SNRPartition, error) {
	_, _ = trace, k
	return SNRPartition{}, nil
}

// BERFromFailureProb mirrors the real pfl parameter.
func BERFromFailureProb(pfl float64, bits int) (float64, error) {
	_, _ = pfl, bits
	return 0, nil
}
