// Stub of the real internal/engine surface the analyzers watch.
package engine

import (
	"context"
	"io"

	"wirelesshart/internal/spec"
)

// Engine is the evaluation engine stub.
type Engine struct{}

// Result is the solved-scenario stub.
type Result struct{}

// SaveSnapshot mirrors the warm-cache serializer.
func (e *Engine) SaveSnapshot(w io.Writer) (int, error) {
	_ = w
	return 0, nil
}

// LoadSnapshot mirrors the validating warm-cache restore.
func (e *Engine) LoadSnapshot(r io.Reader) (int, error) {
	_ = r
	return 0, nil
}

// Evaluate mirrors the cached scenario solve.
func (e *Engine) Evaluate(ctx context.Context, s *spec.Spec) (*Result, error) {
	_, _ = ctx, s
	return &Result{}, nil
}

// EvaluatePeer mirrors the forward-disabled peer solve.
func (e *Engine) EvaluatePeer(ctx context.Context, s *spec.Spec) (*Result, error) {
	_, _ = ctx, s
	return &Result{}, nil
}

// EvaluateBatch mirrors the batched multi-scenario solve.
func (e *Engine) EvaluateBatch(ctx context.Context, specs []*spec.Spec) ([]*Result, error) {
	_, _ = ctx, specs
	return nil, nil
}
