// Stub of the real internal/stats surface the analyzers watch.
package stats

// PMF is the probability-mass-function stub.
type PMF struct{}

// Quantile mirrors the real level parameter.
func (p *PMF) Quantile(level float64) (float64, error) {
	_ = level
	return 0, nil
}

// Percentile mirrors the real quantile-level parameter.
func Percentile(sample []float64, q float64) (float64, error) {
	_ = q
	if len(sample) == 0 {
		return 0, nil
	}
	return sample[0], nil
}

// GeometricPMF mirrors the real success-probability parameter.
func GeometricPMF(p float64, k int) (float64, error) {
	_, _ = p, k
	return 0, nil
}

// GeometricMean mirrors the real success-probability parameter.
func GeometricMean(p float64) (float64, error) {
	_ = p
	return 0, nil
}

// NegBinomialCycles mirrors the real per-slot success probability ps.
func NegBinomialCycles(n int, ps float64, i int) (float64, error) {
	_, _, _ = n, ps, i
	return 0, nil
}

// NegBinomialReachability mirrors the real per-slot success probability ps.
func NegBinomialReachability(n int, ps float64, cycles int) (float64, error) {
	_, _, _ = n, ps, cycles
	return 0, nil
}
