// Stub of the real internal/cluster surface the analyzers watch.
package cluster

import (
	"context"
	"io"
)

// Member is one ring replica stub.
type Member struct {
	ID, URL string
}

// Ring is the consistent-hash ring stub.
type Ring struct{}

// NewRing mirrors the validating ring constructor.
func NewRing(selfID string, members []Member, vnodes int) (*Ring, error) {
	_, _, _ = selfID, members, vnodes
	return &Ring{}, nil
}

// SnapshotEntry is one cached result stub.
type SnapshotEntry struct {
	Key   string
	Value []byte
}

// WriteSnapshot mirrors the snapshot encoder.
func WriteSnapshot(w io.Writer, entries []SnapshotEntry) error {
	_, _ = w, entries
	return nil
}

// ReadSnapshot mirrors the validating snapshot decoder.
func ReadSnapshot(r io.Reader) ([]SnapshotEntry, error) {
	_ = r
	return nil, nil
}

// Client is the peer-forwarding HTTP client stub.
type Client struct{}

// Post mirrors the retrying peer POST.
func (c *Client) Post(ctx context.Context, peer Member, path string, body []byte) ([]byte, error) {
	_, _, _, _ = ctx, peer, path, body
	return nil, nil
}
