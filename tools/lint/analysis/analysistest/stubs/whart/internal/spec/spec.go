// Stub of the real internal/spec surface the analyzers watch.
package spec

import "wirelesshart/internal/link"

// Spec is the scenario specification stub.
type Spec struct{}

// Link is one link entry stub.
type Link struct{}

// ResolveLinkProcess mirrors the fading-aware link resolution.
func (s *Spec) ResolveLinkProcess(l Link) (link.Process, error) {
	_ = l
	return nil, nil
}
