// Stub of the real internal/pathmodel surface the analyzers watch.
package pathmodel

import "wirelesshart/internal/link"

// Model is the bound path model stub.
type Model struct{}

// Structure is the cached Algorithm 1 skeleton stub.
type Structure struct{}

// Bind mirrors the real availability rebind.
func (s *Structure) Bind(avails []func(int) float64) (*Model, error) {
	_ = avails
	return &Model{}, nil
}

// BindProcesses mirrors the link-process rebind.
func (s *Structure) BindProcesses(procs []link.Process) (*Model, error) {
	_ = procs
	return &Model{}, nil
}

// Result is the solved-path stub.
type Result struct{}

// BindBatch mirrors the K-scenario bind.
func (s *Structure) BindBatch(scenarios [][]func(int) float64) ([]*Model, error) {
	_ = scenarios
	return nil, nil
}

// SolveBatch mirrors the lock-step batch solve.
func SolveBatch(models []*Model) ([]*Result, error) {
	_ = models
	return nil, nil
}
