// Stub of the real internal/link surface the analyzers watch; the
// analyzers match by types.Func.FullName, so the module path and
// signatures must mirror the real package.
package link

// Availability mirrors the real package's per-slot up-probability.
type Availability func(int) float64

// Model is the two-state link model stub.
type Model struct{}

// New mirrors link.New(pfl, prc).
func New(pfl, prc float64) (Model, error) {
	_, _ = pfl, prc
	return Model{}, nil
}

// FromAvailability mirrors the real availability/recovery parameters.
func FromAvailability(availability, prc float64) (Model, error) {
	_, _ = availability, prc
	return Model{}, nil
}

// GeometricDownCycles mirrors the real stay-probability parameter.
func (m Model) GeometricDownCycles(stay float64, cycleSlots, maxCycles int, base Availability) (Availability, error) {
	_, _, _ = stay, cycleSlots, maxCycles
	return base, nil
}

// TransientUp mirrors the real u0 parameter.
func (m Model) TransientUp(u0 float64, t int) float64 {
	_ = t
	return u0
}

// Steady mirrors the steady-state availability accessor.
func (m Model) Steady() Availability { return nil }

// KState is the k-state fading model stub.
type KState struct{}

// NewKState mirrors the explicit-matrix constructor.
func NewKState(trans [][]float64, succ []float64) (*KState, error) {
	_, _ = trans, succ
	return &KState{}, nil
}

// FromModel mirrors the exact k=2 embedding.
func FromModel(m Model) (*KState, error) {
	_ = m
	return &KState{}, nil
}

// NewUniformMixing mirrors the uniform-mixing constructor.
func NewUniformMixing(stay float64, succ []float64) (*KState, error) {
	_, _ = stay, succ
	return &KState{}, nil
}

// FromSNRTrace mirrors the SNR-trace fitting constructor.
func FromSNRTrace(trace []float64, k, bits int) (*KState, error) {
	_, _, _ = trace, k, bits
	return &KState{}, nil
}

// MarginalFrom mirrors the transient-marginal accessor.
func (k *KState) MarginalFrom(dist []float64) (func(int) float64, error) {
	_ = dist
	return nil, nil
}

// StartingIn mirrors the single-state transient marginal.
func (k *KState) StartingIn(state int) (func(int) float64, error) {
	_ = state
	return nil, nil
}

// Process mirrors the pluggable link-process interface.
type Process interface {
	States() int
}

// FailureKind mirrors the paper's three failure classes.
type FailureKind int

const (
	// Transient failures last one slot.
	Transient FailureKind = iota + 1
	// RandomDuration failures block the link for several slots.
	RandomDuration
	// Permanent failures never recover.
	Permanent
)
