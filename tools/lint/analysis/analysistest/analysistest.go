// Package analysistest runs an analyzer over a golden testdata module and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract: each expectation
// is a quoted regular expression on the line the diagnostic is reported
// at, and the run fails on both unexpected diagnostics and unmatched
// expectations.
//
// Unlike the x/tools harness, testdata is a self-contained Go module
// (testdata/src/<case>/go.mod) rather than a GOPATH tree, because packages
// are loaded through the go tool in module mode.
//
// Analyzers that watch the real wirelesshart API surface share one stub
// rendition of that module (stubs/whart); RunWithStubs materializes a
// temporary module from the shared stubs plus the analyzer's own case
// packages so each analyzer's testdata carries only its cases.
package analysistest

import (
	"go/ast"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"wirelesshart/tools/lint/analysis"
	"wirelesshart/tools/lint/analysis/load"
	"wirelesshart/tools/lint/analysis/runner"
)

type expectation struct {
	rx      *regexp.Regexp
	source  string
	matched bool
}

// Run loads the module rooted at dir, applies the analyzer to the packages
// matched by patterns (default ./...), and compares the diagnostics with
// the // want comments in the sources. Suppression directives that silence
// nothing are test failures too: goldens must not accumulate stale ignores.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := load.Load(load.Config{Dir: dir}, patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("loading %s: no packages matched", dir)
	}
	res, err := runner.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	want := make(map[string]map[int][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, pkg.Fset, f, want)
		}
	}

	for _, d := range res.Diagnostics {
		exps := want[d.Position.Filename][d.Position.Line]
		found := false
		for _, e := range exps {
			if !e.matched && e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", d.Position, d.Message)
		}
	}
	for file, lines := range want {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: no diagnostic matching %q", file, line, e.source)
				}
			}
		}
	}
	for _, d := range res.Stale([]*analysis.Analyzer{a}) {
		t.Errorf("%s: stale suppression %s %s silences nothing",
			d.Position, runner.SuppressPrefix, strings.Join(d.Names, ","))
	}
}

// RunWithStubs materializes a temporary wirelesshart module from the
// shared stub tree (stubs/whart) overlaid with the case packages under
// caseDir, then runs the analyzer over it like Run. Case files may import
// any wirelesshart/internal/... package stubbed there; overlay files win
// on path collisions so a case can replace a stub wholesale if it must.
func RunWithStubs(t *testing.T, caseDir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("analysistest: cannot locate shared stub tree")
	}
	stubs := filepath.Join(filepath.Dir(self), "stubs", "whart")
	mod := t.TempDir()
	if err := copyTree(stubs, mod); err != nil {
		t.Fatalf("copying shared stubs: %v", err)
	}
	if err := copyTree(caseDir, mod); err != nil {
		t.Fatalf("overlaying %s: %v", caseDir, err)
	}
	Run(t, mod, a, patterns...)
}

// copyTree copies every regular file under src into dst, keeping relative
// paths and overwriting existing files.
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		if !d.Type().IsRegular() {
			return nil
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
}

// collectWants gathers the expectations of one file: every comment of the
// form `// want "rx" "rx2"` attaches to the comment's starting line.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, want map[string]map[int][]*expectation) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			for {
				rest = strings.TrimSpace(rest)
				if rest == "" {
					break
				}
				q, err := strconv.QuotedPrefix(rest)
				if err != nil {
					t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
				}
				rest = rest[len(q):]
				unq, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: malformed want pattern %q: %v", pos, q, err)
				}
				rx, err := regexp.Compile(unq)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, unq, err)
				}
				lines := want[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*expectation)
					want[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], &expectation{rx: rx, source: unq})
			}
		}
	}
}
