// Package analysistest runs an analyzer over a golden testdata module and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract: each expectation
// is a quoted regular expression on the line the diagnostic is reported
// at, and the run fails on both unexpected diagnostics and unmatched
// expectations.
//
// Unlike the x/tools harness, testdata is a self-contained Go module
// (testdata/src/<case>/go.mod) rather than a GOPATH tree, because packages
// are loaded through the go tool in module mode.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"wirelesshart/tools/lint/analysis"
	"wirelesshart/tools/lint/analysis/load"
	"wirelesshart/tools/lint/analysis/runner"
)

type expectation struct {
	rx      *regexp.Regexp
	source  string
	matched bool
}

// Run loads the module rooted at dir, applies the analyzer to the packages
// matched by patterns (default ./...), and compares the diagnostics with
// the // want comments in the sources.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := load.Load(load.Config{Dir: dir}, patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("loading %s: no packages matched", dir)
	}
	diags, err := runner.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	want := make(map[string]map[int][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, pkg.Fset, f, want)
		}
	}

	for _, d := range diags {
		exps := want[d.Position.Filename][d.Position.Line]
		found := false
		for _, e := range exps {
			if !e.matched && e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", d.Position, d.Message)
		}
	}
	for file, lines := range want {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: no diagnostic matching %q", file, line, e.source)
				}
			}
		}
	}
}

// collectWants gathers the expectations of one file: every comment of the
// form `// want "rx" "rx2"` attaches to the comment's starting line.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, want map[string]map[int][]*expectation) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			for {
				rest = strings.TrimSpace(rest)
				if rest == "" {
					break
				}
				q, err := strconv.QuotedPrefix(rest)
				if err != nil {
					t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
				}
				rest = rest[len(q):]
				unq, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: malformed want pattern %q: %v", pos, q, err)
				}
				rx, err := regexp.Compile(unq)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, unq, err)
				}
				lines := want[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*expectation)
					want[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], &expectation{rx: rx, source: unq})
			}
		}
	}
}
