package runner_test

import (
	"go/ast"
	"strings"
	"testing"

	"wirelesshart/tools/lint/analysis"
	"wirelesshart/tools/lint/analysis/load"
	"wirelesshart/tools/lint/analysis/runner"
)

// flagFuncs reports one diagnostic per function declaration, so the test
// can observe exactly which lines the suppression comments silence.
var flagFuncs = &analysis.Analyzer{
	Name: "testcheck",
	Doc:  "flag every function declaration",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "function %s flagged", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func run(t *testing.T) *runner.Result {
	t.Helper()
	pkgs, err := load.Load(load.Config{Dir: "testdata/src/mod"}, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := runner.Run(pkgs, []*analysis.Analyzer{flagFuncs})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestSuppressionComments(t *testing.T) {
	res := run(t)
	var got []string
	for _, d := range res.Diagnostics {
		got = append(got, d.Message)
	}
	want := []string{"function flagged flagged", "function wrongName flagged"}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestStaleDirectives(t *testing.T) {
	res := run(t)
	if len(res.Directives) != 5 {
		t.Fatalf("parsed %d directives, want 5", len(res.Directives))
	}
	stale := res.Stale([]*analysis.Analyzer{flagFuncs})
	if len(stale) != 1 {
		t.Fatalf("stale = %v, want exactly the directive over the var declaration", stale)
	}
	if !strings.Contains(stale[0].String(), "s.go") || stale[0].Names[0] != "testcheck" {
		t.Errorf("stale directive = %v, want the testcheck directive in s.go", stale[0])
	}
	// The othercheck directive silenced nothing either, but othercheck
	// never ran: it must stay exempt rather than flagged.
	for _, d := range stale {
		if d.Names[0] == "othercheck" {
			t.Errorf("directive naming an analyzer outside the run reported stale: %v", d)
		}
	}
}
