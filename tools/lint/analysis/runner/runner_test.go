package runner_test

import (
	"go/ast"
	"testing"

	"wirelesshart/tools/lint/analysis"
	"wirelesshart/tools/lint/analysis/load"
	"wirelesshart/tools/lint/analysis/runner"
)

// flagFuncs reports one diagnostic per function declaration, so the test
// can observe exactly which lines the suppression comments silence.
var flagFuncs = &analysis.Analyzer{
	Name: "testcheck",
	Doc:  "flag every function declaration",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "function %s flagged", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestSuppressionComments(t *testing.T) {
	pkgs, err := load.Load(load.Config{Dir: "testdata/src/mod"}, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := runner.Run(pkgs, []*analysis.Analyzer{flagFuncs})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	want := []string{"function flagged flagged", "function wrongName flagged"}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
