// Package runner executes analyzers over loaded packages and applies the
// suppression-comment protocol shared by the whart-lint binary and the
// analysistest harness. Suppressions are tracked individually so a
// directive that silences nothing — because the finding it once covered
// was fixed, or its analyzer name is misspelled — can itself be reported
// as stale instead of rotting in the tree.
package runner

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"wirelesshart/tools/lint/analysis"
	"wirelesshart/tools/lint/analysis/load"
)

// Diagnostic is one positioned finding after suppression filtering.
type Diagnostic struct {
	Position token.Position
	Category string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Category)
}

// Directive is one parsed //whartlint:ignore comment.
type Directive struct {
	// Position locates the comment itself.
	Position token.Position
	// Names are the analyzer names the directive silences ("*" matches
	// every analyzer).
	Names []string
	// Used reports whether the directive silenced at least one
	// diagnostic in this run.
	Used bool
}

func (d Directive) String() string {
	return fmt.Sprintf("%s: %s %s", d.Position, SuppressPrefix, strings.Join(d.Names, ","))
}

// Result is the outcome of one Run: the surviving diagnostics plus every
// suppression directive seen, each marked with whether it fired.
type Result struct {
	// Diagnostics are the unsuppressed findings, sorted by position.
	Diagnostics []Diagnostic
	// Directives are all parsed suppression comments, sorted by position.
	Directives []Directive
}

// Stale returns the directives that silenced nothing even though at
// least one analyzer they name was part of the run (wildcards count for
// any run). Directives naming only analyzers outside ran — e.g. passes
// skipped with -disable — are exempt: their findings were never looked
// for, so their silence proves nothing.
func (r *Result) Stale(ran []*analysis.Analyzer) []Directive {
	names := make(map[string]bool, len(ran))
	for _, a := range ran {
		names[a.Name] = true
	}
	var stale []Directive
	for _, d := range r.Directives {
		if d.Used {
			continue
		}
		for _, n := range d.Names {
			if n == "*" || names[n] {
				stale = append(stale, d)
				break
			}
		}
	}
	return stale
}

// SuppressPrefix introduces a suppression comment:
//
//	//whartlint:ignore <analyzer>[,<analyzer>...] [reason]
//
// placed on the flagged line or the line directly above it.
const SuppressPrefix = "//whartlint:ignore"

// suppressions maps filename -> line -> the directives covering that
// line. The same *Directive appears under both lines it covers, so one
// match marks it used everywhere.
type suppressions map[string]map[int][]*Directive

func collectSuppressions(pkgs []*load.Package) (suppressions, []*Directive) {
	sup := make(suppressions)
	var all []*Directive
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, SuppressPrefix)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					d := &Directive{Position: pos, Names: strings.Split(fields[0], ",")}
					all = append(all, d)
					lines := sup[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*Directive)
						sup[pos.Filename] = lines
					}
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						lines[ln] = append(lines[ln], d)
					}
				}
			}
		}
	}
	return sup, all
}

// silenced marks every directive covering d as used and reports whether
// at least one matched.
func (s suppressions) silenced(d Diagnostic) bool {
	matched := false
	for _, dir := range s[d.Position.Filename][d.Position.Line] {
		for _, n := range dir.Names {
			if n == "*" || n == d.Category {
				dir.Used = true
				matched = true
				break
			}
		}
	}
	return matched
}

// Run executes every analyzer over every package and returns the
// surviving diagnostics sorted by position, along with the suppression
// directives that filtered them. Analyzer errors abort the run.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) (*Result, error) {
	sup, dirs := collectSuppressions(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Module:    pkg.Module,
			}
			pass.Report = func(d analysis.Diagnostic) {
				out := Diagnostic{
					Position: pkg.Fset.Position(d.Pos),
					Category: a.Name,
					Message:  d.Message,
				}
				if !sup.silenced(out) {
					diags = append(diags, out)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return lessPos(diags[i].Position, diags[j].Position, diags[i].Category, diags[j].Category) })
	res := &Result{Diagnostics: diags, Directives: make([]Directive, len(dirs))}
	for i, d := range dirs {
		res.Directives[i] = *d
	}
	sort.Slice(res.Directives, func(i, j int) bool {
		return lessPos(res.Directives[i].Position, res.Directives[j].Position, "", "")
	})
	return res, nil
}

// lessPos orders by filename, line, column, then a tiebreak string.
func lessPos(a, b token.Position, atie, btie string) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.Column != b.Column {
		return a.Column < b.Column
	}
	return atie < btie
}
