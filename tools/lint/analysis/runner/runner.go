// Package runner executes analyzers over loaded packages and applies the
// suppression-comment protocol shared by the whart-lint binary and the
// analysistest harness.
package runner

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"wirelesshart/tools/lint/analysis"
	"wirelesshart/tools/lint/analysis/load"
)

// Diagnostic is one positioned finding after suppression filtering.
type Diagnostic struct {
	Position token.Position
	Category string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Category)
}

// suppressions maps filename -> line -> analyzer names silenced there. The
// wildcard name "*" silences every analyzer on that line.
type suppressions map[string]map[int]map[string]bool

// SuppressPrefix introduces a suppression comment:
//
//	//whartlint:ignore <analyzer>[,<analyzer>...] [reason]
//
// placed on the flagged line or the line directly above it.
const SuppressPrefix = "//whartlint:ignore"

func collectSuppressions(pkgs []*load.Package) suppressions {
	sup := make(suppressions)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, SuppressPrefix)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					lines := sup[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						sup[pos.Filename] = lines
					}
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						names := lines[ln]
						if names == nil {
							names = make(map[string]bool)
							lines[ln] = names
						}
						for _, name := range strings.Split(fields[0], ",") {
							names[name] = true
						}
					}
				}
			}
		}
	}
	return sup
}

func (s suppressions) silenced(d Diagnostic) bool {
	names := s[d.Position.Filename][d.Position.Line]
	return names["*"] || names[d.Category]
}

// Run executes every analyzer over every package and returns the surviving
// diagnostics sorted by position. Analyzer errors abort the run.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	sup := collectSuppressions(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Module:    pkg.Module,
			}
			pass.Report = func(d analysis.Diagnostic) {
				out := Diagnostic{
					Position: pkg.Fset.Position(d.Pos),
					Category: a.Name,
					Message:  d.Message,
				}
				if !sup.silenced(out) {
					diags = append(diags, out)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Category < b.Category
	})
	return diags, nil
}
