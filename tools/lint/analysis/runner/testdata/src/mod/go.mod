module suppressiontest

go 1.22
