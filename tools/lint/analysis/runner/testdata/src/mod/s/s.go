// Exercises the runner's suppression comments against a test analyzer
// that flags every function declaration.
package s

func flagged() {}

//whartlint:ignore testcheck suppressed from the line above
func lineAbove() {}

func sameLine() {} //whartlint:ignore testcheck suppressed on the same line

//whartlint:ignore * wildcard silences every analyzer
func wildcard() {}

//whartlint:ignore othercheck a different analyzer's suppression does not apply
func wrongName() {}

//whartlint:ignore testcheck stale: the var below is not a func decl, nothing is silenced
var notAFunction = 1
