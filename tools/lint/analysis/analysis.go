// Package analysis is a deliberately small reimplementation of the
// golang.org/x/tools/go/analysis surface that whart-lint's analyzers are
// written against. The repo builds fully offline with a dependency-free
// module graph, so vendoring x/tools is not an option; this package keeps
// the same shape (Analyzer, Pass, Diagnostic, Reportf) so the analyzers
// could be ported to the real framework by changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Run inspects a single type-checked
// package via the Pass and reports findings through Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph help text shown by whart-lint -help.
	Doc string
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// Pass is the interface between the driver and one analyzer run over one
// package. All fields are read-only for the analyzer.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the parsed non-test source files of the package.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds type and object resolution for Files.
	TypesInfo *types.Info
	// Module is the module path the package belongs to (e.g.
	// "wirelesshart"); analyzers use it to restrict rules to first-party
	// packages.
	Module string

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. Category is filled by the driver with the
// analyzer name.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string
}
