package cfa_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"wirelesshart/tools/lint/analysis/cfa"
)

// build parses one function body and returns its graph plus a lookup
// from call-name to the block containing the call statement, so tests
// address blocks by the names of the functions called in them.
func build(t *testing.T, body string) (*cfa.Graph, map[string]*cfa.Block) {
	t.Helper()
	src := "package p\nfunc a()\nfunc b()\nfunc c()\nfunc d()\nfunc f() bool\nfunc target() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "target" {
			fn = fd
		}
	}
	g := cfa.New(fn.Body)
	calls := make(map[string]*cfa.Block)
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				calls[id.Name] = blk
			}
		}
	}
	return g, calls
}

func TestStraightLine(t *testing.T) {
	g, calls := build(t, "a()\nb()")
	if calls["a"] != calls["b"] {
		t.Errorf("a() and b() should share one basic block")
	}
	if !g.Reachable(g.Entry, g.Exit) {
		t.Errorf("exit not reachable from entry")
	}
}

func TestIfElseJoins(t *testing.T) {
	g, calls := build(t, "if f() {\n\ta()\n} else {\n\tb()\n}\nc()")
	if calls["a"] == calls["b"] {
		t.Fatalf("branch arms share a block")
	}
	if !g.Reachable(calls["a"], calls["c"]) || !g.Reachable(calls["b"], calls["c"]) {
		t.Errorf("join block not reachable from both arms")
	}
	if g.Reachable(calls["a"], calls["b"]) {
		t.Errorf("else arm reachable from then arm")
	}
}

func TestReturnTerminatesPath(t *testing.T) {
	g, calls := build(t, "if f() {\n\ta()\n\treturn\n}\nb()")
	if g.Reachable(calls["a"], calls["b"]) {
		t.Errorf("code after return reachable from returning arm")
	}
	if !g.Reachable(g.Entry, calls["b"]) {
		t.Errorf("fallthrough arm lost")
	}
}

func TestLoopBackEdgeAndBreak(t *testing.T) {
	g, calls := build(t, "for f() {\n\ta()\n\tif f() {\n\t\tbreak\n\t}\n\tb()\n}\nc()")
	if !g.Reachable(calls["a"], calls["a"]) {
		t.Errorf("loop body should reach itself via the back edge")
	}
	if !g.Reachable(calls["a"], calls["c"]) {
		t.Errorf("break target not reachable")
	}
	if !g.Reachable(calls["b"], calls["a"]) {
		t.Errorf("back edge from body tail lost")
	}
}

func TestRangeHeadIsAtom(t *testing.T) {
	g, calls := build(t, "xs := []int{1}\nfor range xs {\n\ta()\n}\nb()")
	var rng *ast.RangeStmt
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if r, ok := n.(*ast.RangeStmt); ok {
				rng = r
			}
		}
	}
	if rng == nil {
		t.Fatalf("range statement is not an atom of any block")
	}
	head := g.BlockOf(rng)
	if !g.Reachable(head, calls["a"]) || !g.Reachable(head, calls["b"]) {
		t.Errorf("range head should reach both body and after")
	}
	if !g.Reachable(calls["a"], calls["b"]) {
		t.Errorf("after-loop block not reachable from body")
	}
}

func TestLabeledBreak(t *testing.T) {
	g, calls := build(t, "outer:\nfor f() {\n\tfor f() {\n\t\ta()\n\t\tbreak outer\n\t}\n\tb()\n}\nc()")
	if g.Reachable(calls["a"], calls["b"]) {
		t.Errorf("break outer must leave both loops, not fall into the outer tail")
	}
	if !g.Reachable(calls["a"], calls["c"]) {
		t.Errorf("outer loop exit unreachable after labeled break")
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	g, calls := build(t, "switch 1 {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\ndefault:\n\tc()\n}\nd()")
	if !g.Reachable(calls["a"], calls["b"]) {
		t.Errorf("fallthrough edge missing")
	}
	if g.Reachable(calls["b"], calls["c"]) {
		t.Errorf("case bodies must not leak into the default clause")
	}
	for _, name := range []string{"a", "b", "c"} {
		if !g.Reachable(calls[name], calls["d"]) {
			t.Errorf("case %s does not reach the statement after the switch", name)
		}
	}
}

func TestSelectClausesAndDefers(t *testing.T) {
	g, calls := build(t, "ch := make(chan int)\ndefer a()\nselect {\ncase <-ch:\n\tb()\ndefault:\n\tc()\n}\nd()")
	var sel *ast.SelectStmt
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if s, ok := n.(*ast.SelectStmt); ok {
				sel = s
			}
		}
	}
	if sel == nil {
		t.Fatalf("select statement is not an atom of any block")
	}
	if !g.Reachable(g.BlockOf(sel), calls["b"]) || !g.Reachable(g.BlockOf(sel), calls["c"]) {
		t.Errorf("select clauses unreachable from the select header")
	}
	if !g.Reachable(calls["b"], calls["d"]) {
		t.Errorf("post-select block unreachable from a clause")
	}
	if len(g.Defers) != 1 {
		t.Errorf("Defers = %d, want 1", len(g.Defers))
	}
}

func TestInfiniteLoopDoesNotReachAfter(t *testing.T) {
	g, calls := build(t, "for {\n\ta()\n}\nb()")
	if g.Reachable(calls["a"], calls["b"]) {
		t.Errorf("infinite loop must not fall through")
	}
	if g.Reachable(g.Entry, g.Exit) {
		t.Errorf("exit should be unreachable past an infinite loop")
	}
}
