// Package cfa builds lightweight intra-procedural control-flow graphs
// over go/ast function bodies, the shared dataflow substrate under the
// detrange, locksafe and goleak analyzers (DESIGN.md §16).
//
// The graph is deliberately small: basic blocks hold "atomic" nodes
// (simple statements and the header expressions of control statements)
// and control structure lives entirely in the Succs edges. Composite
// statements are decomposed — an if contributes its Init and Cond to the
// current block and branch edges to its arms, a for loop contributes a
// head block with its Cond and a back edge, a select contributes the
// SelectStmt node itself as a header marker plus one block per clause.
// Function literals are NOT descended into: a FuncLit appearing in an
// atom runs on its own goroutine of control, so analyzers build a
// separate Graph for each literal they care about.
//
// Known approximations, chosen for a linter (low noise over soundness):
// goto is treated like return (the path ends), and panics/runtime exits
// are not modeled.
package cfa

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal single-entry run of atomic nodes.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order;
	// Entry is 0).
	Index int
	// Nodes holds the block's atomic nodes in execution order. Composite
	// statements appear only through their headers: the Cond of an if or
	// for, the RangeStmt of a range loop (inspect X/Key/Value only — its
	// Body belongs to successor blocks), the Tag of a switch, the
	// SelectStmt of a select (a blocking marker — its clause bodies
	// belong to successor blocks).
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters at.
	Entry *Block
	// Exit is the synthetic block every return (and the final
	// fall-off-the-end) reaches; it holds no nodes.
	Exit *Block
	// Blocks lists every block in creation order.
	Blocks []*Block

	// Defers holds every DeferStmt of the body (outside nested function
	// literals), in source order. Deferred calls run at Exit; they are
	// collected here rather than appended to Exit so analyzers can apply
	// defer semantics explicitly.
	Defers []*ast.DeferStmt

	nodeBlock map[ast.Node]*Block
}

// BlockOf returns the block whose Nodes contain n, or nil if n is not an
// atom of this graph.
func (g *Graph) BlockOf(n ast.Node) *Block { return g.nodeBlock[n] }

// Reachable reports whether to is reachable from from by following Succs
// edges (a block reaches itself only through a cycle).
func (g *Graph) Reachable(from, to *Block) bool {
	if from == nil || to == nil {
		return false
	}
	seen := make([]bool, len(g.Blocks))
	work := []*Block{from}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if s == to {
				return true
			}
			if !seen[s.Index] {
				seen[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return false
}

// New builds the graph of one function body. A nil body (declaration
// without a definition) yields a graph whose Entry falls straight to
// Exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{nodeBlock: make(map[ast.Node]*Block)}
	b := &builder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	cur := g.Entry
	if body != nil {
		cur = b.stmtList(body.List, cur)
	}
	if cur != nil {
		b.edge(cur, g.Exit)
	}
	return g
}

// scope is one enclosing breakable/continuable statement.
type scope struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select scopes
}

type builder struct {
	g      *Graph
	scopes []scope
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) atom(blk *Block, n ast.Node) {
	if n == nil {
		return
	}
	blk.Nodes = append(blk.Nodes, n)
	b.g.nodeBlock[n] = blk
}

// stmtList threads list through cur and returns the block where control
// continues afterwards, or nil when every path terminated (return, goto,
// unlabeled terminal branch).
func (b *builder) stmtList(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable trailing code still gets blocks so its atoms
			// exist in the graph, but nothing points at them.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *builder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.LabeledStmt:
		return b.labeled(s, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		b.atom(cur, s.Cond)
		after := b.newBlock()
		thenEntry := b.newBlock()
		b.edge(cur, thenEntry)
		if thenExit := b.stmtList(s.Body.List, thenEntry); thenExit != nil {
			b.edge(thenExit, after)
		}
		if s.Else != nil {
			elseEntry := b.newBlock()
			b.edge(cur, elseEntry)
			if elseExit := b.stmt(s.Else, elseEntry); elseExit != nil {
				b.edge(elseExit, after)
			}
		} else {
			b.edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		return b.forLoop(s, cur, "")

	case *ast.RangeStmt:
		return b.rangeLoop(s, cur, "")

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		b.atom(cur, s.Tag)
		return b.caseClauses(s.Body.List, cur, "")

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		b.atom(cur, s.Assign)
		return b.caseClauses(s.Body.List, cur, "")

	case *ast.SelectStmt:
		return b.selectStmt(s, cur, "")

	case *ast.ReturnStmt:
		b.atom(cur, s)
		b.edge(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		return b.branch(s, cur)

	case *ast.DeferStmt:
		b.atom(cur, s)
		b.g.Defers = append(b.g.Defers, s)
		return cur

	case *ast.EmptyStmt:
		return cur

	default:
		// Simple statements: assignments, declarations, expression
		// statements, go statements, sends, inc/dec.
		b.atom(cur, s)
		return cur
	}
}

// labeled threads a labeled statement; loops and switches consume the
// label as a break/continue target, anything else just falls through
// (goto targets are not modeled).
func (b *builder) labeled(s *ast.LabeledStmt, cur *Block) *Block {
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		return b.forLoop(inner, cur, s.Label.Name)
	case *ast.RangeStmt:
		return b.rangeLoop(inner, cur, s.Label.Name)
	case *ast.SwitchStmt:
		if inner.Init != nil {
			cur = b.stmt(inner.Init, cur)
		}
		b.atom(cur, inner.Tag)
		return b.caseClauses(inner.Body.List, cur, s.Label.Name)
	case *ast.TypeSwitchStmt:
		if inner.Init != nil {
			cur = b.stmt(inner.Init, cur)
		}
		b.atom(cur, inner.Assign)
		return b.caseClauses(inner.Body.List, cur, s.Label.Name)
	case *ast.SelectStmt:
		return b.selectStmt(inner, cur, s.Label.Name)
	default:
		return b.stmt(s.Stmt, cur)
	}
}

func (b *builder) forLoop(s *ast.ForStmt, cur *Block, label string) *Block {
	if s.Init != nil {
		cur = b.stmt(s.Init, cur)
	}
	head := b.newBlock()
	b.edge(cur, head)
	b.atom(head, s.Cond)
	after := b.newBlock()
	if s.Cond != nil {
		b.edge(head, after)
	}
	post := head
	if s.Post != nil {
		post = b.newBlock()
		postExit := b.stmt(s.Post, post)
		b.edge(postExit, head)
	}
	bodyEntry := b.newBlock()
	b.edge(head, bodyEntry)
	b.scopes = append(b.scopes, scope{label: label, breakTo: after, continueTo: post})
	bodyExit := b.stmtList(s.Body.List, bodyEntry)
	b.scopes = b.scopes[:len(b.scopes)-1]
	if bodyExit != nil {
		b.edge(bodyExit, post)
	}
	return after
}

func (b *builder) rangeLoop(s *ast.RangeStmt, cur *Block, label string) *Block {
	head := b.newBlock()
	b.edge(cur, head)
	// The RangeStmt itself is the head atom: analyzers inspect its
	// X/Key/Value but must not descend into Body from here.
	b.atom(head, s)
	after := b.newBlock()
	b.edge(head, after)
	bodyEntry := b.newBlock()
	b.edge(head, bodyEntry)
	b.scopes = append(b.scopes, scope{label: label, breakTo: after, continueTo: head})
	bodyExit := b.stmtList(s.Body.List, bodyEntry)
	b.scopes = b.scopes[:len(b.scopes)-1]
	if bodyExit != nil {
		b.edge(bodyExit, head)
	}
	return after
}

// caseClauses builds the clause blocks of a switch/type-switch already
// threaded up to cur (init and tag consumed).
func (b *builder) caseClauses(clauses []ast.Stmt, cur *Block, label string) *Block {
	after := b.newBlock()
	b.scopes = append(b.scopes, scope{label: label, breakTo: after})
	entries := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		entries[i] = b.newBlock()
		b.edge(cur, entries[i])
	}
	for i, cs := range clauses {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		entry := entries[i]
		for _, e := range cc.List {
			b.atom(entry, e)
		}
		exit := b.stmtListWithFallthrough(cc.Body, entry, entries, i)
		if exit != nil {
			b.edge(exit, after)
		}
	}
	if !hasDefault {
		b.edge(cur, after)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	return after
}

// stmtListWithFallthrough is stmtList plus the fallthrough edge of case
// bodies: a trailing fallthrough jumps to the next clause's entry.
func (b *builder) stmtListWithFallthrough(list []ast.Stmt, cur *Block, entries []*Block, i int) *Block {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if cur != nil && i+1 < len(entries) {
				b.edge(cur, entries[i+1])
			}
			return nil
		}
		if cur == nil {
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *builder) selectStmt(s *ast.SelectStmt, cur *Block, label string) *Block {
	// The SelectStmt node marks the (potentially) blocking choice point;
	// its clause bodies live in successor blocks.
	b.atom(cur, s)
	after := b.newBlock()
	b.scopes = append(b.scopes, scope{label: label, breakTo: after})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		entry := b.newBlock()
		b.edge(cur, entry)
		if cc.Comm != nil {
			entry = b.stmt(cc.Comm, entry)
		}
		if exit := b.stmtList(cc.Body, entry); exit != nil {
			b.edge(exit, after)
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	return after
}

func (b *builder) branch(s *ast.BranchStmt, cur *Block) *Block {
	b.atom(cur, s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if sc := b.findScope(label, false); sc != nil {
			b.edge(cur, sc.breakTo)
		}
		return nil
	case token.CONTINUE:
		if sc := b.findScope(label, true); sc != nil {
			b.edge(cur, sc.continueTo)
		}
		return nil
	case token.GOTO:
		// Not modeled: treat like return so no spurious fallthrough path
		// is created.
		b.edge(cur, b.g.Exit)
		return nil
	case token.FALLTHROUGH:
		// Handled by stmtListWithFallthrough; a stray one ends the path.
		return nil
	}
	return cur
}

// findScope resolves a break/continue target: the innermost matching
// scope, skipping continue-less scopes (switch/select) for continue.
func (b *builder) findScope(label string, needContinue bool) *scope {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := &b.scopes[i]
		if needContinue && sc.continueTo == nil {
			continue
		}
		if label == "" || sc.label == label {
			return sc
		}
	}
	return nil
}

// Literals returns every function literal nested anywhere under n,
// without descending into inner literals' bodies from the outer walk —
// each returned literal is a root for its own analysis.
func Literals(n ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			out = append(out, lit)
			return false
		}
		return true
	})
	return out
}
