// Package load turns `go list` package metadata into parsed, type-checked
// packages without depending on golang.org/x/tools/go/packages. It shells
// out to the go tool with -deps -export so every dependency (stdlib
// included) is compiled into export data by the build cache, then
// type-checks only the target packages from source, resolving imports
// through the standard library's gc importer with a lookup function over
// the export files. The whole pipeline works offline and needs nothing
// beyond the toolchain itself.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	// ImportPath is the package's full import path.
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Module is the path of the module the package belongs to.
	Module string
	// Fset maps positions; it is shared by all packages of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, in GoFiles order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries full type and object resolution for Files.
	Info *types.Info
}

// Config parameterizes a Load call.
type Config struct {
	// Dir is the working directory for the go tool; it must be inside the
	// module whose packages are being loaded. Empty means the current
	// directory.
	Dir string
}

type listModule struct {
	Path string
}

type listError struct {
	Pos string
	Err string
}

type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Name       string
	Module     *listModule
	Error      *listError
	DepsErrors []*listError
}

// Load lists patterns with the go tool and returns the matched packages
// parsed and type-checked. Dependencies are resolved from compiled export
// data, so a package that fails to build surfaces as a load error rather
// than a half-checked result.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,Name,Module,Error,DepsErrors",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	// A surrounding go.work must not change which module the patterns
	// resolve in; lint runs are per-module.
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var listed []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		listed = append(listed, p)
	}

	var targets []*listPackage
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s: cgo packages are not supported", p.ImportPath)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("package %s: %v", t.ImportPath, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("package %s: %v", t.ImportPath, err)
		}
		module := ""
		if t.Module != nil {
			module = t.Module.Path
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Module:     module,
			Fset:       fset,
			Files:      files,
			Types:      tp,
			Info:       info,
		})
	}
	return pkgs, nil
}
