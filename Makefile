GO ?= go

.PHONY: all build test race vet bench clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
