GO ?= go

# Minimum statement coverage for the solver-critical packages.
COVER_PKGS = ./internal/dtmc ./internal/pathmodel ./internal/core
COVER_MIN  = 85

.PHONY: all build test race vet bench cover clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	@$(GO) test -coverprofile=coverage.out $(COVER_PKGS)
	@$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	ok=$$(awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN {print (t+0 >= m+0) ? 1 : 0}'); \
	if [ "$$ok" != "1" ]; then \
		echo "coverage $$total% below minimum $(COVER_MIN)%"; exit 1; \
	fi

clean:
	$(GO) clean ./...
