GO ?= go

# Minimum statement coverage for the solver-critical packages.
COVER_PKGS = ./internal/dtmc ./internal/pathmodel ./internal/core ./internal/obs ./internal/link ./internal/channel ./internal/cluster
COVER_MIN  = 85

.PHONY: all build test race vet lint lint-selftest sarif bench cover fleet-smoke cluster-smoke clean

all: build vet test

build:
	$(GO) build ./...
	$(GO) -C tools/lint build ./...

test:
	$(GO) test -shuffle=on ./...
	$(GO) -C tools/lint test -shuffle=on ./...

# -short skips the slow large-network integration tests; the race detector
# already multiplies their runtime several-fold.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...
	$(GO) -C tools/lint vet ./...

# Mirrors the CI lint job: vet, the repo's own analyzer suite (layercheck,
# probfloat, mustcheck, exhaustenum, detrange, locksafe, goleak — see
# DESIGN.md §11 and §16) over both modules plus the seeded-violation
# selftest, and staticcheck when it is installed (CI pins and installs
# it). whart-lint also fails on stale //whartlint:ignore directives, so
# suppressions cannot outlive their findings.
lint: vet lint-selftest
	$(GO) -C tools/lint run ./cmd/whart-lint -dir $(CURDIR) ./...
	$(GO) -C tools/lint run ./cmd/whart-lint -dir $(CURDIR)/tools/lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Canary for the lint wiring: whart-lint must FAIL (exit 1 with a
# detrange finding) on the deliberately broken fixture module. If this
# target passes, the map-order float-accumulation bug class (PR 6) is
# still being caught end to end.
lint-selftest:
	@out=$$($(GO) -C tools/lint run ./cmd/whart-lint -dir $(CURDIR)/tools/lint/selftest/seeded ./... 2>&1); status=$$?; \
	if [ $$status -ne 1 ]; then \
		echo "lint selftest: expected exit 1 on seeded fixture, got $$status"; echo "$$out"; exit 1; \
	fi; \
	echo "$$out" | grep -q "(detrange)" || { echo "lint selftest: no detrange finding:"; echo "$$out"; exit 1; }; \
	echo "lint selftest: seeded detrange violation caught"

# SARIF 2.1.0 reports for GitHub code scanning (CI uploads these).
sarif:
	$(GO) -C tools/lint run ./cmd/whart-lint -dir $(CURDIR) -format=sarif -o $(CURDIR)/whart-lint.sarif ./... || true
	$(GO) -C tools/lint run ./cmd/whart-lint -dir $(CURDIR)/tools/lint -format=sarif -o $(CURDIR)/whart-lint-tools.sarif ./... || true

bench:
	$(GO) test -bench=. -benchmem ./...

# CI fleet smoke: sweep a 50-network population twice with a fixed seed
# and require byte-identical reports — the end-to-end determinism check
# behind the fleet subsystem (DESIGN.md §12) — then repeat with k-state
# fading links drawn into the population (DESIGN.md §14).
fleet-smoke:
	@a=$$(mktemp) b=$$(mktemp); \
	trap 'rm -f "$$a" "$$b"' EXIT; \
	$(GO) run ./cmd/whart-fleet -seed 1 -n 50 -pernet -o "$$a" || exit 1; \
	$(GO) run ./cmd/whart-fleet -seed 1 -n 50 -pernet -o "$$b" || exit 1; \
	cmp "$$a" "$$b" || { echo "fleet sweep not byte-deterministic"; exit 1; }; \
	echo "fleet smoke: 50-network sweep deterministic"; \
	$(GO) run ./cmd/whart-fleet -seed 1 -n 50 -pernet -fading 0.3 -fadingstates 3 -o "$$a" || exit 1; \
	$(GO) run ./cmd/whart-fleet -seed 1 -n 50 -pernet -fading 0.3 -fadingstates 3 -o "$$b" || exit 1; \
	cmp "$$a" "$$b" || { echo "fading fleet sweep not byte-deterministic"; exit 1; }; \
	echo "fleet smoke: 50-network fading sweep deterministic"

# CI cluster smoke: boot a 3-replica consistent-hash cluster, drive the
# same scenarios through different replicas (cross-replica cache hits via
# peer forwarding), SIGTERM one replica and require the survivors to keep
# answering in degraded-local mode, then restart it from its snapshot and
# require zero fresh solves (DESIGN.md §15).
cluster-smoke:
	./scripts/cluster_smoke.sh

# The profile lives in a temp file so `make cover` never dirties the tree.
cover:
	@profile=$$(mktemp); \
	trap 'rm -f "$$profile"' EXIT; \
	$(GO) test -coverprofile="$$profile" $(COVER_PKGS) || exit 1; \
	$(GO) tool cover -func="$$profile" | tail -1; \
	total=$$($(GO) tool cover -func="$$profile" | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	ok=$$(awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN {print (t+0 >= m+0) ? 1 : 0}'); \
	if [ "$$ok" != "1" ]; then \
		echo "coverage $$total% below minimum $(COVER_MIN)%"; exit 1; \
	fi

clean:
	$(GO) clean ./...
