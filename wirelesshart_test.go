package wirelesshart

import (
	"math"
	"strings"
	"testing"
)

func mustTypical(t *testing.T) *Network {
	t.Helper()
	n, err := Typical()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuilderValidation(t *testing.T) {
	n := New()
	if err := n.Link("a", "b"); err == nil {
		t.Error("link between unknown nodes should error")
	}
	if err := n.Gateway("G"); err != nil {
		t.Fatal(err)
	}
	if err := n.Gateway("G2"); err == nil {
		t.Error("second gateway should error")
	}
	if err := n.Device("n1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Device("n1"); err == nil {
		t.Error("duplicate device should error")
	}
	if err := n.Link("n1", "G", BER(-1)); err == nil {
		t.Error("negative BER should error")
	}
	if err := n.Link("n1", "G", Recovery(0)); err == nil {
		t.Error("zero recovery should error")
	}
	if err := n.Link("n1", "G", Availability(0.903)); err != nil {
		t.Fatal(err)
	}
	if err := n.Link("n1", "G"); err == nil {
		t.Error("duplicate link should error")
	}
}

func TestAnalyzeTypicalMatchesPaper(t *testing.T) {
	n := mustTypical(t)
	rep, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fup != 20 {
		t.Errorf("Fup = %d, want 20", rep.Fup)
	}
	if math.Abs(rep.OverallMeanDelayMS-235) > 1.5 {
		t.Errorf("E[Gamma] = %v, want ~235", rep.OverallMeanDelayMS)
	}
	p10, ok := rep.PathBySource("n10")
	if !ok {
		t.Fatal("n10 missing")
	}
	if math.Abs(p10.ExpectedDelayMS-421.4) > 1 {
		t.Errorf("E[tau_10] = %v, want 421.4", p10.ExpectedDelayMS)
	}
	if p10.Hops != 3 || len(p10.Route) != 4 || p10.Route[0] != "n10" {
		t.Errorf("path 10 route = %v", p10.Route)
	}
	if len(p10.Slots) != 3 || p10.Slots[2] != 19 {
		t.Errorf("path 10 slots = %v", p10.Slots)
	}
	if !strings.Contains(rep.Schedule, "<n10,n7>") {
		t.Errorf("schedule missing eta entries: %s", rep.Schedule)
	}
	if p10.ExpectedIntervalsToLoss < 50 {
		t.Errorf("E[N] = %v, want > 50 at R=0.99", p10.ExpectedIntervalsToLoss)
	}
	if len(rep.OverallDelay) == 0 || rep.Utilization <= 0 {
		t.Error("overall measures missing")
	}
	// Loop completion: below R^2 (late uplink arrivals leave no downlink
	// time) but positive and above the one-cycle product.
	if p10.LoopCompletion <= 0 || p10.LoopCompletion >= p10.Reachability*p10.Reachability {
		t.Errorf("loop completion = %v, want in (0, R^2=%v)",
			p10.LoopCompletion, p10.Reachability*p10.Reachability)
	}
	firstCycle := p10.CycleProbs[0] * p10.CycleProbs[0]
	if math.Abs(p10.LoopCycleProbs[0]-firstCycle) > 1e-12 {
		t.Errorf("one-cycle loop = %v, want q1^2 = %v", p10.LoopCycleProbs[0], firstCycle)
	}
	// Percentiles: path 10's delays are 190/590/990/1390 ms; with cycle
	// probabilities ~0.578/0.294/0.100/0.028 the 95th percentile falls at
	// 990 ms and the 99th at 1390 ms.
	if p10.DelayP95MS != 990 || p10.DelayP99MS != 1390 {
		t.Errorf("p95/p99 = %v/%v, want 990/1390", p10.DelayP95MS, p10.DelayP99MS)
	}
	if p10.DelayStdDevMS <= 0 {
		t.Error("delay jitter should be positive")
	}
}

func TestAnalyzeOptions(t *testing.T) {
	n := mustTypical(t)
	if _, err := n.Analyze(ReportingInterval(0)); err == nil {
		t.Error("Is=0 should error")
	}
	if _, err := n.Analyze(TTL(-1)); err == nil {
		t.Error("negative TTL should error")
	}
	if _, err := n.Analyze(DownlinkFrame(-1)); err == nil {
		t.Error("negative Fdown should error")
	}
	if _, err := n.Analyze(Policy(SchedulePolicy(9))); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := n.Analyze(ExtraIdleSlots(-1)); err == nil {
		t.Error("negative padding should error")
	}
	if _, err := n.Analyze(Priority()); err == nil {
		t.Error("empty priority should error")
	}
	if _, err := n.Analyze(Priority("zzz")); err == nil {
		t.Error("unknown priority node should error")
	}
}

func TestAnalyzeEtaBViaPriority(t *testing.T) {
	n := mustTypical(t)
	rep, err := n.Analyze(Priority("n9", "n10", "n4", "n5", "n6", "n8", "n7", "n1", "n2", "n3"))
	if err != nil {
		t.Fatal(err)
	}
	p10, _ := rep.PathBySource("n10")
	if math.Abs(p10.ExpectedDelayMS-291) > 1 {
		t.Errorf("eta_b E[tau_10] = %v, want ~291", p10.ExpectedDelayMS)
	}
	p7, _ := rep.PathBySource("n7")
	if math.Abs(p7.ExpectedDelayMS-317.95) > 1 {
		t.Errorf("eta_b E[tau_7] = %v, want ~317.95", p7.ExpectedDelayMS)
	}
	if math.Abs(rep.OverallMeanDelayMS-272) > 1.5 {
		t.Errorf("eta_b E[Gamma] = %v, want ~272", rep.OverallMeanDelayMS)
	}
}

func TestAnalyzeLongestFirstPolicy(t *testing.T) {
	n := mustTypical(t)
	rep, err := n.Analyze(Policy(LongestFirst))
	if err != nil {
		t.Fatal(err)
	}
	// Path 9 goes first under longest-first: slots 1-3.
	p9, _ := rep.PathBySource("n9")
	if len(p9.Slots) != 3 || p9.Slots[0] != 1 {
		t.Errorf("longest-first path 9 slots = %v", p9.Slots)
	}
}

func TestAnalyzeMultiChannel(t *testing.T) {
	n := mustTypical(t)
	single, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	multi, err := n.Analyze(Channels(2))
	if err != nil {
		t.Fatal(err)
	}
	if multi.Fup >= single.Fup {
		t.Errorf("2-channel Fup %d should beat single-channel %d", multi.Fup, single.Fup)
	}
	if multi.OverallMeanDelayMS >= single.OverallMeanDelayMS {
		t.Errorf("2-channel E[Gamma] %v should beat %v",
			multi.OverallMeanDelayMS, single.OverallMeanDelayMS)
	}
	// Reachability unchanged: same number of attempts per interval.
	for _, mp := range multi.Paths {
		sp, _ := single.PathBySource(mp.Source)
		if math.Abs(mp.Reachability-sp.Reachability) > 1e-12 {
			t.Errorf("path %s reachability changed: %v vs %v",
				mp.Source, mp.Reachability, sp.Reachability)
		}
	}
	if !strings.Contains(multi.Schedule, "|") {
		t.Errorf("multi-channel schedule should show parallel slots: %s", multi.Schedule)
	}
	if _, err := n.Analyze(Channels(0)); err == nil {
		t.Error("Channels(0) should error")
	}
	if _, err := n.Analyze(Channels(17)); err == nil {
		t.Error("Channels(17) should error")
	}
}

func TestSimulateMultiChannelMatchesAnalyze(t *testing.T) {
	// The simulator executes multi-channel schedules too: parallel
	// transmissions in one slot, same reachability and delays as the
	// analyzer predicts.
	n := mustTypical(t)
	rep, err := n.Analyze(Channels(2))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := n.Simulate(6000, 21, Channels(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range sim.Paths {
		ap, ok := rep.PathBySource(sp.Source)
		if !ok {
			t.Fatalf("path %s missing", sp.Source)
		}
		tol := math.Max(4*sp.ReachabilityCI, 0.006)
		if math.Abs(sp.Reachability-ap.Reachability) > tol {
			t.Errorf("path %s: sim %v vs analytic %v", sp.Source, sp.Reachability, ap.Reachability)
		}
		if math.Abs(sp.ExpectedDelayMS-ap.ExpectedDelayMS) > 12 {
			t.Errorf("path %s: delay sim %v vs analytic %v",
				sp.Source, sp.ExpectedDelayMS, ap.ExpectedDelayMS)
		}
	}
}

func TestRoutes(t *testing.T) {
	n := mustTypical(t)
	routes, err := n.Routes()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"n9", "n6", "n2", "G"}
	got := routes["n9"]
	if len(got) != len(want) {
		t.Fatalf("route n9 = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("route n9[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLinkDownDuringInjection(t *testing.T) {
	// e3 (n3-G) down for the first cycle: path 10's reachability falls
	// below the clean value but stays above the blocked-cycle bound.
	n := mustTypical(t)
	clean, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	injected, err := n.Analyze(LinkDownDuring("n3", "G", 1, 21))
	if err != nil {
		t.Fatal(err)
	}
	c10, _ := clean.PathBySource("n10")
	i10, _ := injected.PathBySource("n10")
	if !(i10.Reachability < c10.Reachability) {
		t.Errorf("injection should reduce reachability: %v vs %v", i10.Reachability, c10.Reachability)
	}
	if i10.Reachability < 0.9628-1e-3 {
		t.Errorf("exact injection %v below blocked-cycle bound 0.9628", i10.Reachability)
	}
	// Unaffected path keeps its reachability.
	c1, _ := clean.PathBySource("n1")
	i1, _ := injected.PathBySource("n1")
	if math.Abs(c1.Reachability-i1.Reachability) > 1e-12 {
		t.Error("unaffected path changed")
	}
	if _, err := n.Analyze(LinkDownDuring("zz", "G", 1, 5)); err == nil {
		t.Error("unknown link should error")
	}
	if _, err := n.Analyze(LinkDownDuring("n3", "G", 5, 1)); err == nil {
		t.Error("invalid window should error")
	}
}

func TestLinkPermanentlyDown(t *testing.T) {
	n := mustTypical(t)
	rep, err := n.Analyze(LinkPermanentlyDown("n3", "G"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"n3", "n7", "n8", "n10"} {
		p, _ := rep.PathBySource(name)
		if p.Reachability != 0 {
			t.Errorf("path %s over dead e3: R = %v, want 0", name, p.Reachability)
		}
	}
	p1, _ := rep.PathBySource("n1")
	if p1.Reachability == 0 {
		t.Error("path n1 should be unaffected")
	}
	if _, err := n.Analyze(LinkPermanentlyDown("zz", "G")); err == nil {
		t.Error("unknown link should error")
	}
}

func TestSimulateMatchesAnalyze(t *testing.T) {
	n := mustTypical(t)
	rep, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := n.Simulate(8000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Intervals != 8000 {
		t.Errorf("intervals = %d", sim.Intervals)
	}
	for _, sp := range sim.Paths {
		ap, ok := rep.PathBySource(sp.Source)
		if !ok {
			t.Fatalf("path %s missing from analysis", sp.Source)
		}
		tol := math.Max(4*sp.ReachabilityCI, 0.005)
		if math.Abs(sp.Reachability-ap.Reachability) > tol {
			t.Errorf("path %s: sim %v vs analytic %v", sp.Source, sp.Reachability, ap.Reachability)
		}
	}
	if math.Abs(sim.Utilization-rep.Utilization) > 0.01 {
		t.Errorf("sim utilization %v vs analytic %v", sim.Utilization, rep.Utilization)
	}
	if _, ok := sim.PathBySource("zzz"); ok {
		t.Error("unknown source should report false")
	}
}

func TestSimulateWithInjection(t *testing.T) {
	n := mustTypical(t)
	sim, err := n.Simulate(4000, 9, LinkDownDuring("n3", "G", 1, 21))
	if err != nil {
		t.Fatal(err)
	}
	p3, _ := sim.PathBySource("n3")
	// Blocked first cycle: ~0.9951 expected.
	if math.Abs(p3.Reachability-0.9951) > 0.01 {
		t.Errorf("injected sim R = %v, want ~0.9951", p3.Reachability)
	}
	if p3.CycleProbs[0] != 0 {
		t.Error("no cycle-1 deliveries during blocked cycle")
	}
}

func TestSuggestImprovements(t *testing.T) {
	n := mustTypical(t)
	sugg, err := n.SuggestImprovements(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 10 {
		t.Fatalf("suggestions = %d, want 10", len(sugg))
	}
	// e3 = n3-G tops the ranking (shared by 4 paths).
	top := sugg[0]
	key := top.A + top.B
	if key != "n3G" && key != "Gn3" {
		t.Errorf("top suggestion = %s-%s, want n3-G", top.A, top.B)
	}
	if top.SharedBy != 4 || top.MeanReachabilityGain <= 0 {
		t.Errorf("top suggestion = %+v", top)
	}
	if _, err := n.SuggestImprovements(0); err == nil {
		t.Error("delta 0 should error")
	}
}

func TestPredictAttachmentTable4(t *testing.T) {
	n := mustTypical(t)
	alpha, err := n.PredictAttachment("n4", 7)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := n.PredictAttachment("n1", 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha.Reachability-0.9946) > 5e-4 {
		t.Errorf("R_alpha = %v, want 0.9946", alpha.Reachability)
	}
	if math.Abs(beta.Reachability-0.9945) > 5e-4 {
		t.Errorf("R_beta = %v, want 0.9945", beta.Reachability)
	}
	if alpha.Hops != 3 || beta.Hops != 2 {
		t.Errorf("hops = %d, %d, want 3, 2", alpha.Hops, beta.Hops)
	}
	if _, err := n.PredictAttachment("zzz", 7); err == nil {
		t.Error("unknown attachment node should error")
	}
	if _, err := n.PredictAttachment("n1", -1); err == nil {
		t.Error("negative SNR should error")
	}
}

func TestPredictMultiHopAttachment(t *testing.T) {
	// Two peer hops at excellent SNR via the 1-hop path n1: composed 3
	// hops, reachability just below the excellent-link bound.
	n := mustTypical(t)
	pred, err := n.PredictMultiHopAttachment("n1", []float64{12, 12})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Hops != 3 {
		t.Errorf("hops = %d, want 3", pred.Hops)
	}
	// Each Eb/N0=12 hop is nearly perfect, so the composition is close
	// to the existing 1-hop reachability.
	single, err := n.PredictAttachment("n1", 12)
	if err != nil {
		t.Fatal(err)
	}
	if !(pred.Reachability < single.Reachability) {
		t.Errorf("extra hop should cost reachability: %v vs %v",
			pred.Reachability, single.Reachability)
	}
	if pred.Reachability < 0.99 {
		t.Errorf("excellent 3-hop composition R = %v", pred.Reachability)
	}
	if _, err := n.PredictMultiHopAttachment("n1", nil); err == nil {
		t.Error("empty peer path should error")
	}
}

func TestAccessPointPattern(t *testing.T) {
	// The paper: "Each gateway can support one or more Access Points".
	// Model APs as devices with perfect wired links to the gateway:
	// reachability then reflects only the radio hops.
	n := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.Gateway("G"))
	for _, ap := range []string{"ap1", "ap2"} {
		must(n.Device(ap))
		must(n.Link(ap, "G", FailureProb(0))) // wired backhaul
	}
	must(n.Device("sensor1"))
	must(n.Device("sensor2"))
	must(n.Link("sensor1", "ap1", Availability(0.903)))
	must(n.Link("sensor2", "ap2", Availability(0.903)))

	rep, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sensor1", "sensor2"} {
		p, ok := rep.PathBySource(name)
		if !ok {
			t.Fatalf("path %s missing", name)
		}
		if p.Hops != 2 {
			t.Errorf("%s hops = %d, want 2 (radio + wired)", name, p.Hops)
		}
		// The wired hop never fails, so R equals the 1-hop radio value.
		want, err := stats2Reach(0.903, 4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Reachability-want) > 1e-9 {
			t.Errorf("%s R = %v, want %v (radio-only)", name, p.Reachability, want)
		}
	}
	// The AP's own "path" is the perfect wired hop.
	ap, _ := rep.PathBySource("ap1")
	if ap.Reachability != 1 {
		t.Errorf("AP wired reachability = %v, want 1", ap.Reachability)
	}
}

// stats2Reach is the 1-hop closed form sum ps*pf^(i-1) over Is cycles.
func stats2Reach(ps float64, is int) (float64, error) {
	r := 0.0
	pf := 1 - ps
	term := ps
	for i := 0; i < is; i++ {
		r += term
		term *= pf
	}
	return r, nil
}

func TestExamplePathFig6(t *testing.T) {
	cycles, err := ExamplePath([]int{3, 6, 7}, 7, 4, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.4219, 0.3164, 0.1582, 0.06592}
	for i, w := range want {
		if math.Abs(cycles[i]-w) > 5e-5 {
			t.Errorf("cycle %d = %v, want %v", i+1, cycles[i], w)
		}
	}
	if _, err := ExamplePath(nil, 7, 4, 0.75); err == nil {
		t.Error("empty slots should error")
	}
	if _, err := ExamplePath([]int{1}, 7, 4, 0); err == nil {
		t.Error("zero availability should error")
	}
}

func TestLinkOptionVariants(t *testing.T) {
	n := New()
	if err := n.Gateway("G"); err != nil {
		t.Fatal(err)
	}
	for i, opt := range []LinkOption{BER(1e-4), EbN0(7), Availability(0.903), FailureProb(0.0966)} {
		name := string(rune('a' + i))
		if err := n.Device(name); err != nil {
			t.Fatal(err)
		}
		if err := n.Link(name, "G", opt); err != nil {
			t.Fatalf("option %d: %v", i, err)
		}
	}
	rep, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// BER 1e-4 and FailureProb 0.0966 and Availability 0.903 coincide;
	// EbN0=7 gives p_fl 0.089 (slightly better).
	a, _ := rep.PathBySource("a")
	c, _ := rep.PathBySource("c")
	d, _ := rep.PathBySource("d")
	if math.Abs(a.Reachability-c.Reachability) > 1e-4 || math.Abs(a.Reachability-d.Reachability) > 1e-4 {
		t.Error("equivalent parameterizations disagree")
	}
	b, _ := rep.PathBySource("b")
	if b.Reachability <= a.Reachability {
		t.Error("Eb/N0=7 link should slightly beat BER 1e-4")
	}
}

func TestExplicitSlotsReproducesPaperSchedule(t *testing.T) {
	// The Section V-A schedule (slots 3, 6, 7 of a 7-slot frame) through
	// the public API: E[tau] = 190.8 ms exactly as the paper.
	n := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.Gateway("G"))
	for _, d := range []string{"n3", "n2", "n1"} {
		must(n.Device(d))
	}
	must(n.Link("n3", "G", Availability(0.75)))
	must(n.Link("n2", "n3", Availability(0.75)))
	must(n.Link("n1", "n2", Availability(0.75)))

	rep, err := n.Analyze(ExplicitSlots(7, map[string][]int{"n1": {3, 6, 7}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) != 1 {
		t.Fatalf("paths = %d, want 1 (relays excluded)", len(rep.Paths))
	}
	p := rep.Paths[0]
	if math.Abs(p.Reachability-0.9624) > 5e-5 {
		t.Errorf("R = %v, want 0.9624", p.Reachability)
	}
	if math.Abs(p.ExpectedDelayMS-190.8) > 0.1 {
		t.Errorf("E[tau] = %v, want 190.8", p.ExpectedDelayMS)
	}
	if len(p.Slots) != 3 || p.Slots[0] != 3 || p.Slots[2] != 7 {
		t.Errorf("slots = %v, want [3 6 7]", p.Slots)
	}
}

func TestExplicitSlotsValidation(t *testing.T) {
	n := mustTypical(t)
	if _, err := n.Analyze(ExplicitSlots(0, map[string][]int{"n1": {1}})); err == nil {
		t.Error("zero frame should error")
	}
	if _, err := n.Analyze(ExplicitSlots(7, nil)); err == nil {
		t.Error("empty explicit map should error")
	}
	if _, err := n.Analyze(ExplicitSlots(7, map[string][]int{"zzz": {1}})); err == nil {
		t.Error("unknown source should error")
	}
	if _, err := n.Analyze(ExplicitSlots(7, map[string][]int{"n10": {1}})); err == nil {
		t.Error("slot count mismatch should error")
	}
	if _, err := n.Analyze(ExplicitSlots(7, map[string][]int{"n1": {9}})); err == nil {
		t.Error("slot beyond frame should error")
	}
}
